package pool

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"crn/internal/sqlparse"
)

// TestHeapEvictionHonorsStaleTouches drives the lazy-repair path of the
// eviction heap: an entry that was the oldest at insertion but has been
// re-stamped by candidate selection must be skipped (its heap record is
// stale) in favor of the true least-recently-matched entry.
func TestHeapEvictionHonorsStaleTouches(t *testing.T) {
	p := New(WithCap(3))
	qa := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	qb := sqlparse.MustParse(s, "SELECT * FROM cast_info WHERE cast_info.role_id = 2")
	qc := sqlparse.MustParse(s, "SELECT * FROM movie_keyword WHERE movie_keyword.keyword_id = 3")
	p.Add(qa, 10) // tick 1
	p.Add(qb, 20) // tick 2
	p.Add(qc, 30) // tick 3

	// Touch qa: its heap record (tick 1) is now stale.
	p.Matching(sqlparse.MustParse(s, "SELECT * FROM title"))

	// Saturated insert: the victim must be qb (oldest current stamp), not
	// qa (oldest heap record).
	qd := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 4")
	if !p.Add(qd, 40) {
		t.Fatal("insert should succeed")
	}
	if !p.Contains(qa) || p.Contains(qb) || !p.Contains(qc) {
		t.Fatalf("victim should be qb: a=%v b=%v c=%v",
			p.Contains(qa), p.Contains(qb), p.Contains(qc))
	}

	// Touch qc, then overflow again: now qa (stamped before qd was added)
	// is the true victim.
	p.Matching(sqlparse.MustParse(s, "SELECT * FROM movie_keyword"))
	qe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 5")
	p.Add(qe, 50)
	if p.Contains(qa) {
		t.Error("qa should be the second victim")
	}
	if !p.Contains(qc) || !p.Contains(qd) || !p.Contains(qe) {
		t.Error("recently stamped entries must survive")
	}
	if got := p.Stats().Evictions; got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}

// TestHeapEvictionMatchesLinearScan cross-checks the heap victim search
// against the pre-heap linear scan over a randomized-ish workload: after
// every saturated insert both must agree on pool membership.
func TestHeapEvictionMatchesLinearScan(t *testing.T) {
	const capacity = 16
	heapPool := New(WithCap(capacity))
	scanPool := New(WithCap(capacity))
	// scanPool uses the same Add path; force it through the fallback scan by
	// draining its heap after every insert.
	drain := func(p *Pool) {
		p.mu.Lock()
		p.evictQ = p.evictQ[:0]
		p.mu.Unlock()
	}
	sql := func(i int) string {
		return fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", i)
	}
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 0")
	for i := 0; i < 4*capacity; i++ {
		q := sqlparse.MustParse(s, sql(i))
		heapPool.Add(q, int64(i+1))
		scanPool.Add(q, int64(i+1))
		drain(scanPool)
		if i%5 == 0 {
			// Identical touch traffic on both pools.
			heapPool.TopK(probe, 4)
			scanPool.TopK(probe, 4)
		}
		if heapPool.Len() != scanPool.Len() {
			t.Fatalf("step %d: len %d != %d", i, heapPool.Len(), scanPool.Len())
		}
	}
	for i := 0; i < 4*capacity; i++ {
		q := sqlparse.MustParse(s, sql(i))
		if heapPool.Contains(q) != scanPool.Contains(q) {
			t.Fatalf("membership diverged at %d: heap=%v scan=%v",
				i, heapPool.Contains(q), scanPool.Contains(q))
		}
	}
}

// recordingListener captures mutation callbacks.
type recordingListener struct {
	versions []uint64
	evicted  []string
}

func (r *recordingListener) PoolMutated(version uint64, evictedKey string) {
	r.versions = append(r.versions, version)
	if evictedKey != "" {
		r.evicted = append(r.evicted, evictedKey)
	}
}

// TestSubscribeObservesMutations pins the listener contract: one callback
// per version bump, evictions carry the victim's canonical key, inserts an
// empty key, and Unsubscribe stops delivery.
func TestSubscribeObservesMutations(t *testing.T) {
	p := New(WithCap(2))
	rec := &recordingListener{}
	p.Subscribe(rec)
	p.Subscribe(rec) // duplicate subscription must not double-deliver

	qa := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	qb := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 2")
	qc := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 3")
	p.Add(qa, 1)
	p.Add(qb, 2)
	if len(rec.versions) != 2 || len(rec.evicted) != 0 {
		t.Fatalf("two insert callbacks expected: %+v", rec)
	}
	p.Add(qc, 3) // saturated: evict + insert = two bumps
	if len(rec.versions) != 4 {
		t.Fatalf("saturated Add should deliver two callbacks, got %d total", len(rec.versions))
	}
	if len(rec.evicted) != 1 || rec.evicted[0] != qa.Key() {
		t.Fatalf("evicted keys = %v, want [%q]", rec.evicted, qa.Key())
	}
	for i := 1; i < len(rec.versions); i++ {
		if rec.versions[i] <= rec.versions[i-1] {
			t.Fatalf("versions not increasing: %v", rec.versions)
		}
	}
	if rec.versions[len(rec.versions)-1] != p.Version() {
		t.Errorf("last delivered version %d != pool version %d",
			rec.versions[len(rec.versions)-1], p.Version())
	}

	p.Unsubscribe(rec)
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 4"), 4)
	if len(rec.versions) != 4 {
		t.Errorf("unsubscribed listener still notified: %+v", rec.versions)
	}
}

// TestSaveLoadRoundTripsLRUState is the regression pin for the ROADMAP bug:
// Save/Load used to drop last-match ticks, so a restarted bounded pool
// evicted in insertion order. The restored pool must evict the same victim
// the saved pool would have.
func TestSaveLoadRoundTripsLRUState(t *testing.T) {
	p := New(WithCap(2))
	qa := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	qb := sqlparse.MustParse(s, "SELECT * FROM cast_info WHERE cast_info.role_id = 2")
	p.Add(qa, 10) // inserted first ...
	p.Add(qb, 20)
	// ... but matched last: under true LRU, qb is now the victim.
	p.Matching(sqlparse.MustParse(s, "SELECT * FROM title"))

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(s, &buf, WithCap(2))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || loaded.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", loaded.Len(), loaded.Cap())
	}
	m := loaded.Matching(qa)
	if len(m) != 1 || m[0].Card != 10 {
		t.Fatalf("cards not preserved: %+v", m)
	}

	loaded.Add(sqlparse.MustParse(s, "SELECT * FROM movie_keyword"), 30)
	if !loaded.Contains(qa) {
		t.Error("restored pool evicted the recently matched entry (LRU state lost)")
	}
	if loaded.Contains(qb) {
		t.Error("restored pool should evict the least-recently-matched entry")
	}
}

// TestSaveDeterministic pins that two saves of one pool are byte-identical
// (map iteration order must not leak into the payload).
func TestSaveDeterministic(t *testing.T) {
	p := New()
	for i := 0; i < 20; i++ {
		p.Add(sqlparse.MustParse(s, fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d", i)), int64(i+1))
	}
	var a, b bytes.Buffer
	if err := p.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two saves of an unchanged pool differ")
	}
}

// TestLoadLegacyFormat accepts the pre-envelope payload (a bare entry slice
// without recency stamps).
func TestLoadLegacyFormat(t *testing.T) {
	legacy := []struct {
		SQL  string
		Card int64
	}{
		{"SELECT * FROM title WHERE title.kind_id = 1", 7},
		{"SELECT * FROM cast_info", 9},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	p, err := Load(s, &buf)
	if err != nil {
		t.Fatalf("legacy payload should load: %v", err)
	}
	if p.Len() != 2 {
		t.Fatalf("loaded %d entries", p.Len())
	}
	if m := p.Matching(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 2")); len(m) != 1 || m[0].Card != 7 {
		t.Errorf("legacy cards not preserved: %+v", m)
	}
}
