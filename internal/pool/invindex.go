// Inverted signature index: sublinear bounded candidate selection.
//
// PR 4's TopK bounded the estimator's PAIR count at K but still scored every
// FROM-clause signature per probe — the last O(pool) term on the serving hot
// path (~1.9 ms at 50k entries). This file removes it without changing a
// single selected candidate: selection through the index is bit-identical to
// the linear scan, for every probe, every k, and every mutation history.
//
// # Structure
//
// Each fromIndex partitions its entries into signature CLASSES keyed by the
// signature's value-free pattern (column/op/join bitmasks plus each range's
// column hash and boundedness/conflict flags — query.Signature.PatternKey).
// Real workloads are template-driven: thousands of entries collapse into a
// handful of classes (the inverted-index posting lists, one per distinct
// column-mask bit pattern). Within a class, members are grouped into BUCKETS
// of fully identical signatures (equal range values too — ValueKey), and the
// class also keeps a flat ascending list of all member IDs.
//
// # Why scoring whole classes at once is exact
//
// Similarity(probe, m) reads m's masks and range SHAPE everywhere except
// rangeAffinity's value comparisons, so over one class the probe's scoring
// walk is structurally fixed. Two consequences:
//
//   - SimilarityBound gives a true per-class upper bound (accumulated in
//     Similarity's exact operation order with pointwise-≥ addends, so
//     floating-point monotonicity applies) and detects FLAT classes, where
//     no matched column's affinity depends on member values: every member
//     scores bit-identically, one Similarity call covers the class.
//   - In a non-flat class, members of one bucket share their entire
//     signature, so one Similarity call covers the bucket.
//
// Classes are visited in descending upper-bound order; once the heap holds k
// candidates and the next class's bound is strictly below the worst kept
// score, no remaining member can be selected (it would lose the heap
// comparison anyway) and the walk stops. Within a uniform-score run (flat
// class, or one bucket) IDs ascend, so the first rejected member proves all
// later ones rejected too. Every skipped candidate is thus one the heap
// itself would have rejected — and the heap's kept set is order-independent
// (better-ness is a strict total order) — so the selected set, scores and
// output order equal the linear scan's exactly.
//
// # Coherence and cost
//
// The index mutates only under the pool's write lock, alongside the
// structures it mirrors: Add appends to class/bucket lists, eviction leaves
// a tombstone (membership is "still present in byID") plus a dead counter,
// and lists compact when tombstones outnumber live members — O(1) amortized
// per mutation, no rebuild, no extra Version() semantics (the PR 3 rep-cache
// interplay is untouched). Selection degenerates when every entry has a
// distinct pattern (one class per entry: the bound sort would cost more than
// the scan it avoids), so past a density threshold — more than one class per
// classDensityDiv entries on a large FROM clause — TopK falls back to the
// linear scan and reports it in Stats.IndexFallbacks.
package pool

import "sort"

const (
	// minIndexEntries is the FROM-clause size below which the density guard
	// never triggers: on small clauses the index is at worst comparable to
	// the linear scan, and always exercising it keeps the equivalence
	// properties continuously tested by every suite that touches TopK.
	minIndexEntries = 1024
	// classDensityDiv is the density threshold divisor: a FROM clause with
	// more than len(entries)/classDensityDiv classes (average class smaller
	// than classDensityDiv members) gains too little from class-at-a-time
	// scoring to pay for ranking the classes, so selection falls back to the
	// linear scan.
	classDensityDiv = 4
)

// sigBucket groups the members of one signature class whose signatures are
// fully identical (equal range values). ids is ascending and append-only
// (entry IDs are unique and monotonic); evicted members stay as tombstones —
// an ID no longer present in the FROM index's byID map — counted by dead and
// filtered out on scan, until compaction rewrites the list.
type sigBucket struct {
	ids  []int64
	dead int
}

// sigClass is one value-free signature pattern (see PatternKey): members
// share every mask and range shape, differing only in range bound values.
type sigClass struct {
	pat     Signature // representative member signature; pattern part read
	all     []int64   // every member ID, ascending, tombstones included
	dead    int       // tombstones in all
	live    int       // live members
	buckets map[string]*sigBucket
}

// indexAdd registers a just-appended entry with the class index. The caller
// holds the write lock and has already inserted the entry into byID.
func (idx *fromIndex) indexAdd(sig Signature, id int64) {
	if idx.classes == nil {
		idx.classes = make(map[string]*sigClass)
	}
	ck := sig.PatternKey()
	c := idx.classes[ck]
	if c == nil {
		c = &sigClass{pat: sig, buckets: make(map[string]*sigBucket)}
		idx.classes[ck] = c
	}
	c.all = append(c.all, id)
	c.live++
	vk := sig.ValueKey()
	b := c.buckets[vk]
	if b == nil {
		b = &sigBucket{}
		c.buckets[vk] = b
	}
	b.ids = append(b.ids, id)
}

// indexRemove records an entry's eviction. The caller holds the write lock
// and has already deleted the entry from byID (compaction relies on that).
func (idx *fromIndex) indexRemove(sig Signature, id int64) {
	if idx.classes == nil {
		return
	}
	ck := sig.PatternKey()
	c := idx.classes[ck]
	if c == nil {
		return
	}
	c.live--
	c.dead++
	if c.live <= 0 {
		delete(idx.classes, ck)
		return
	}
	vk := sig.ValueKey()
	if b := c.buckets[vk]; b != nil {
		b.dead++
		if b.dead >= len(b.ids) {
			delete(c.buckets, vk)
		} else if b.dead > len(b.ids)-b.dead {
			b.ids = compactIDs(b.ids, idx.byID)
			b.dead = 0
		}
	}
	if c.dead > c.live {
		c.all = compactIDs(c.all, idx.byID)
		c.dead = 0
	}
}

// compactIDs filters an ID list down to the IDs still present in byID,
// in place, preserving ascending order.
func compactIDs(ids []int64, byID map[int64]int) []int64 {
	w := 0
	for _, id := range ids {
		if _, ok := byID[id]; ok {
			ids[w] = id
			w++
		}
	}
	return ids[:w]
}

// classRef is one class during selection, with its similarity upper bound.
type classRef struct {
	c    *sigClass
	ub   float64
	flat bool
}

// selectIndexedLocked runs bounded selection through the class index.
// Callers hold at least the read lock and have checked 0 < k < len(entries).
// ok=false means the density guard rejected the index for this FROM clause
// and the caller must fall back to the linear scan; on success the returned
// refs and usable count are bit-identical to selectLinearLocked's, and
// visited reports how many candidates the class walk actually scored (the
// per-call pruning signal behind the scanned/pruned histograms).
func (p *Pool) selectIndexedLocked(idx *fromIndex, probe Signature, k int) (refs []scoredRef, usable int, visited uint64, ok bool) {
	if idx.classes == nil {
		return nil, 0, 0, false
	}
	if len(idx.entries) >= minIndexEntries && len(idx.classes)*classDensityDiv > len(idx.entries) {
		return nil, 0, 0, false
	}
	classes := make([]classRef, 0, len(idx.classes))
	for _, c := range idx.classes {
		ub, flat := probe.SimilarityBound(c.pat)
		classes = append(classes, classRef{c: c, ub: ub, flat: flat})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].ub > classes[j].ub })
	heap := newTopKHeap(k)
	for _, cr := range classes {
		if heap.full() && cr.ub < heap.refs[0].score {
			// Bounds are sorted descending: every remaining class is provably
			// below the worst kept score, so its members would all be
			// rejected. Strict <: a member tying the root can still win on ID.
			break
		}
		if cr.flat {
			visited += p.offerClassFlat(heap, idx, cr.c, probe)
		} else {
			visited += p.offerClassBuckets(heap, idx, cr.c, probe)
		}
	}
	p.indexHits.Add(1)
	p.scannedIdx.Add(visited)
	return heap.sorted(), idx.nPos, visited, true
}

// offerClassFlat offers a flat class's members: every member scores
// bit-identically (the probe's walk hits no value-dependent affinity case),
// so one Similarity call covers the class, and iteration stops at the first
// rejected member — within the uniform-score run, IDs ascend, so every later
// member loses the same comparison. Returns the number of candidates
// visited (the scanned-counter contribution).
func (p *Pool) offerClassFlat(heap *topKHeap, idx *fromIndex, c *sigClass, probe Signature) uint64 {
	var visited uint64
	scored := false
	var score float64
	for _, id := range c.all {
		pos, present := idx.byID[id]
		if !present {
			continue // tombstone: evicted, not yet compacted
		}
		if idx.entries[pos].Card <= 0 {
			continue // empty-result entries are skipped exactly like the scan
		}
		visited++
		if !scored {
			score = probe.Similarity(idx.sigs[pos])
			scored = true
		}
		r := scoredRef{score: score, idx: pos, id: id}
		if heap.full() && !r.better(heap.refs[0]) {
			break
		}
		heap.offer(r)
	}
	return visited
}

// offerClassBuckets offers a non-flat class bucket by bucket: one bucket's
// members share their full signature, so one Similarity call covers the
// bucket with the same uniform-score early break as the flat case. Bucket
// visit order is irrelevant (the heap's kept set is order-independent).
func (p *Pool) offerClassBuckets(heap *topKHeap, idx *fromIndex, c *sigClass, probe Signature) uint64 {
	var visited uint64
	for _, b := range c.buckets {
		scored := false
		var score float64
		for _, id := range b.ids {
			pos, present := idx.byID[id]
			if !present {
				continue
			}
			if idx.entries[pos].Card <= 0 {
				continue
			}
			visited++
			if !scored {
				score = probe.Similarity(idx.sigs[pos])
				scored = true
			}
			r := scoredRef{score: score, idx: pos, id: id}
			if heap.full() && !r.better(heap.refs[0]) {
				break
			}
			heap.offer(r)
		}
	}
	return visited
}
