package pool

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"crn/internal/query"
	"crn/internal/sqlparse"
)

// randIndexSQL generates a random conjunctive query over the star schema
// with deliberately overlapping predicate structure: a small column set,
// tight value range and occasional joins, so pools built from it contain
// recurring signature classes, value buckets, conflicts and join variants —
// the full case surface of the inverted index.
func randIndexSQL(r *rand.Rand) string {
	cols := []string{"title.kind_id", "title.production_year", "title.season_nr", "title.episode_nr"}
	ops := []string{"<", "=", ">"}
	var preds []string
	for n := 1 + r.Intn(3); n > 0; n-- {
		preds = append(preds, fmt.Sprintf("%s %s %d",
			cols[r.Intn(len(cols))], ops[r.Intn(len(ops))], r.Intn(40)))
	}
	if r.Intn(4) == 0 {
		preds = append(preds, "title.id = cast_info.movie_id")
		if r.Intn(2) == 0 {
			preds = append(preds, fmt.Sprintf("cast_info.role_id = %d", r.Intn(6)))
		}
		return "SELECT * FROM cast_info, title WHERE " + strings.Join(preds, " AND ")
	}
	return "SELECT * FROM title WHERE " + strings.Join(preds, " AND ")
}

// mustTopKEqual asserts two TopK results are fully identical: same entries,
// same order, same cardinalities.
func mustTopKEqual(t *testing.T, ctx string, got, want []Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Card != want[i].Card {
			t.Fatalf("%s: entry %d = (ID %d, card %d), want (ID %d, card %d)",
				ctx, i, got[i].ID, got[i].Card, want[i].ID, want[i].Card)
		}
	}
}

// TestIndexedTopKMatchesLinearScan pins the tentpole equivalence: for
// random pools and probes, selection through the signature-class index
// returns exactly — same set, same order, bit for bit — what the linear
// scan returns, across every k regime (unbound, non-binding, binding,
// k = 1).
func TestIndexedTopKMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	idxPool := New()
	linPool := New(WithIndexedSelection(false))
	for n := 0; n < 400; n++ {
		q := sqlparse.MustParse(s, randIndexSQL(r))
		card := int64(r.Intn(50)) // includes 0: dead entries both paths skip
		idxPool.Add(q, card)
		linPool.Add(q, card)
	}
	ks := []int{1, 2, 3, 8, 50, idxPool.Len() - 1, idxPool.Len(), 0}
	for probeN := 0; probeN < 60; probeN++ {
		probe := sqlparse.MustParse(s, randIndexSQL(r))
		for _, k := range ks {
			mustTopKEqual(t, fmt.Sprintf("probe %d k=%d (%s)", probeN, k, probe.SQL()),
				idxPool.TopK(probe, k), linPool.TopK(probe, k))
		}
	}
	ist, lst := idxPool.Stats(), linPool.Stats()
	if ist.TopKCalls != lst.TopKCalls || ist.TruncatedCalls != lst.TruncatedCalls {
		t.Errorf("call accounting diverged: indexed %+v vs linear %+v", ist, lst)
	}
	if ist.IndexHits == 0 || ist.ScannedIndexed == 0 {
		t.Errorf("indexed pool never used the index: %+v", ist)
	}
	if ist.ScannedIndexed >= lst.ScannedFallback {
		t.Errorf("index scanned %d candidates, linear scanned %d — no pruning happened",
			ist.ScannedIndexed, lst.ScannedFallback)
	}
}

// TestIndexCoherenceUnderMutation drives an indexed bounded pool and a
// linear twin through one identical randomized interleaving of Add (with
// LRU eviction pressure), UpdateCard (including to/from zero) and TopK, and
// requires bit-identical selection throughout. Both pools see the same
// operation sequence, so their tick clocks, IDs and eviction victims
// coincide; any divergence is index incoherence.
func TestIndexCoherenceUnderMutation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	idxPool := New(WithCap(120))
	linPool := New(WithCap(120), WithIndexedSelection(false))
	var added []query.Query
	for step := 0; step < 4000; step++ {
		switch r.Intn(5) {
		case 0, 1: // add (evicts once full)
			q := sqlparse.MustParse(s, randIndexSQL(r))
			card := int64(r.Intn(40))
			if idxPool.Add(q, card) != linPool.Add(q, card) {
				t.Fatalf("step %d: add outcome diverged for %s", step, q.SQL())
			}
			added = append(added, q)
		case 2: // update a previously added query's truth (may be evicted: no-op)
			if len(added) == 0 {
				continue
			}
			q := added[r.Intn(len(added))]
			card := int64(r.Intn(40)) // 0 flips liveness
			if idxPool.UpdateCard(q, card) != linPool.UpdateCard(q, card) {
				t.Fatalf("step %d: update outcome diverged for %s", step, q.SQL())
			}
		default: // select
			probe := sqlparse.MustParse(s, randIndexSQL(r))
			k := 1 + r.Intn(12)
			mustTopKEqual(t, fmt.Sprintf("step %d k=%d (%s)", step, k, probe.SQL()),
				idxPool.TopK(probe, k), linPool.TopK(probe, k))
		}
	}
	if idxPool.Len() != linPool.Len() {
		t.Fatalf("pool sizes diverged: %d vs %d", idxPool.Len(), linPool.Len())
	}
	ist := idxPool.Stats()
	if ist.Evictions == 0 {
		t.Fatal("interleaving never evicted — the coherence test lost its point")
	}
	if ist.IndexHits == 0 {
		t.Fatalf("interleaving never exercised the index: %+v", ist)
	}
	if ist.TruncatedCalls != linPool.Stats().TruncatedCalls {
		t.Errorf("truncation accounting diverged: indexed %+v vs linear %+v", ist, linPool.Stats())
	}
}

// TestIndexedTopKAfterSaveLoad round-trips a mutated indexed pool through
// Save/Load (the index is rebuilt by Load's re-Adds) and checks selection
// still matches a linear-scan load of the same bytes.
func TestIndexedTopKAfterSaveLoad(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := New(WithCap(150))
	for n := 0; n < 300; n++ {
		p.Add(sqlparse.MustParse(s, randIndexSQL(r)), int64(r.Intn(40)))
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	idxPool, err := Load(s, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load indexed: %v", err)
	}
	linPool, err := Load(s, bytes.NewReader(buf.Bytes()), WithIndexedSelection(false))
	if err != nil {
		t.Fatalf("load linear: %v", err)
	}
	for probeN := 0; probeN < 40; probeN++ {
		probe := sqlparse.MustParse(s, randIndexSQL(r))
		k := 1 + r.Intn(10)
		mustTopKEqual(t, fmt.Sprintf("probe %d k=%d", probeN, k),
			idxPool.TopK(probe, k), linPool.TopK(probe, k))
	}
}

// TestIndexDensityFallback pins the density guard: a large FROM clause
// whose entries nearly all carry distinct signature patterns gains nothing
// from class-at-a-time scoring, so bounded selection must fall back to the
// linear scan and say so in the stats.
func TestIndexDensityFallback(t *testing.T) {
	p := New()
	cols := []string{"title.kind_id", "title.production_year", "title.season_nr", "title.episode_nr"}
	ops := []string{"<", "=", ">"}
	// Mixed-radix enumeration of per-column shapes: each column absent or
	// constrained by one operator class, every combination a distinct
	// pattern... 4^4-1 = 255 single-op patterns, extended past the density
	// threshold by two-column-two-op combinations.
	n := 0
	for code := 1; n < minIndexEntries; code++ {
		var preds []string
		c := code
		for i := 0; i < len(cols) && c > 0; i, c = i+1, c/7 {
			switch d := c % 7; {
			case d == 0: // column absent
			case d <= 3:
				preds = append(preds, fmt.Sprintf("%s %s %d", cols[i], ops[d-1], 10+i))
			default: // two predicates: both-bounded / conflicting shapes
				preds = append(preds, fmt.Sprintf("%s %s %d", cols[i], ops[(d-4)%3], 5+i),
					fmt.Sprintf("%s %s %d", cols[i], ops[(d-3)%3], 25+i))
			}
		}
		if len(preds) == 0 {
			continue
		}
		if p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE "+strings.Join(preds, " AND ")), 10) {
			n++
		}
	}
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 11")
	lin := New(WithIndexedSelection(false))
	for _, e := range p.Entries() {
		lin.Add(e.Q, e.Card)
	}
	mustTopKEqual(t, "fallback selection", p.TopK(probe, 16), lin.TopK(probe, 16))
	st := p.Stats()
	if st.IndexFallbacks != 1 || st.IndexHits != 0 {
		t.Errorf("density guard did not trigger: %+v", st)
	}
	if st.ScannedFallback == 0 || st.ScannedIndexed != 0 {
		t.Errorf("fallback selection misattributed its scan: %+v", st)
	}
}

// TestConcurrentIndexedTopKEvictionUpdate races indexed selection against
// eviction-heavy writes and cardinality updates on one bounded pool. Run
// with -race (CI does); assertions only check shape invariants, the
// detector checks index maintenance synchronization.
func TestConcurrentIndexedTopKEvictionUpdate(t *testing.T) {
	const capacity = 200
	p := New(WithCap(capacity))
	queries := make([]query.Query, 600)
	r := rand.New(rand.NewSource(3))
	for i := range queries {
		queries[i] = sqlparse.MustParse(s, randIndexSQL(r))
	}
	probes := make([]query.Query, 16)
	for i := range probes {
		probes[i] = sqlparse.MustParse(s, randIndexSQL(r))
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := w; i < len(queries); i += 4 {
				p.Add(queries[i], int64(i%37))
			}
		}(w)
	}
	for u := 0; u < 2; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			<-start
			for i := u; i < len(queries); i += 2 {
				p.UpdateCard(queries[i], int64((i+1)%23))
			}
		}(u)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 300; i++ {
				k := 1 + (i+g)%16
				if got := p.TopK(probes[(i+g)%len(probes)], k); len(got) > k {
					t.Errorf("TopK(%d) returned %d entries", k, len(got))
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if p.Len() > capacity {
		t.Errorf("pool size %d exceeds capacity %d", p.Len(), capacity)
	}
	// The pool must still be coherent after the storm: selection equals a
	// linear rebuild of the surviving entries.
	lin := New(WithIndexedSelection(false))
	entries := p.Entries()
	// Rebuild in ascending ID order so tie-breaks match.
	for id := int64(0); int(id) < len(queries)+1; id++ {
		for _, e := range entries {
			if e.ID == id {
				lin.Add(e.Q, e.Card)
			}
		}
	}
	for i, probe := range probes {
		got, want := p.TopK(probe, 8), lin.TopK(probe, 8)
		if len(got) != len(want) {
			t.Fatalf("post-storm probe %d: %d entries vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].Card != want[j].Card || got[j].Q.SQL() != want[j].Q.SQL() {
				t.Fatalf("post-storm probe %d entry %d: (%s, %d) vs (%s, %d)",
					i, j, got[j].Q.SQL(), got[j].Card, want[j].Q.SQL(), want[j].Card)
			}
		}
	}
}

// FuzzSignatureIndex interprets the fuzz input as an operation stream
// driven against an indexed bounded pool and a linear twin: inserts,
// cardinality updates and bounded selections, with a Save/Load round-trip
// at the end. The index must never panic, never select an entry the linear
// scan would not, and survive persistence.
func FuzzSignatureIndex(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x17, 0x80, 0x02, 0x99})
	f.Add([]byte("add-update-select"))
	f.Add(bytes.Repeat([]byte{0x07, 0xe1}, 40))
	cols := []string{"title.kind_id", "title.production_year", "title.season_nr", "title.episode_nr"}
	ops := []string{"<", "=", ">"}
	f.Fuzz(func(t *testing.T, data []byte) {
		idxPool := New(WithCap(48))
		linPool := New(WithCap(48), WithIndexedSelection(false))
		var added []query.Query
		buildQuery := func(b1, b2 byte) query.Query {
			var preds []string
			for i := 0; i < 1+int(b1%3); i++ {
				sel := int(b1)>>uint(2*i) + int(b2)*i
				preds = append(preds, fmt.Sprintf("%s %s %d",
					cols[sel%len(cols)], ops[(sel/4)%len(ops)], int(b2)%32))
			}
			return sqlparse.MustParse(s, "SELECT * FROM title WHERE "+strings.Join(preds, " AND "))
		}
		for i := 0; i+2 < len(data); i += 3 {
			op, b1, b2 := data[i], data[i+1], data[i+2]
			switch op % 3 {
			case 0:
				q := buildQuery(b1, b2)
				card := int64(b2 % 17)
				if idxPool.Add(q, card) != linPool.Add(q, card) {
					t.Fatalf("add diverged for %s", q.SQL())
				}
				added = append(added, q)
			case 1:
				if len(added) == 0 {
					continue
				}
				q := added[int(b1)%len(added)]
				card := int64(b2 % 11)
				if idxPool.UpdateCard(q, card) != linPool.UpdateCard(q, card) {
					t.Fatalf("update diverged for %s", q.SQL())
				}
			case 2:
				probe := buildQuery(b1, b2)
				k := 1 + int(b1%9)
				got, want := idxPool.TopK(probe, k), linPool.TopK(probe, k)
				if len(got) != len(want) {
					t.Fatalf("TopK(%d) size diverged: %d vs %d (%s)", k, len(got), len(want), probe.SQL())
				}
				for j := range got {
					if got[j].ID != want[j].ID || got[j].Card != want[j].Card {
						t.Fatalf("TopK(%d)[%d] diverged: (ID %d, %d) vs (ID %d, %d) for %s",
							k, j, got[j].ID, got[j].Card, want[j].ID, want[j].Card, probe.SQL())
					}
				}
			}
		}
		// Persistence round-trip: the rebuilt index must agree with a linear
		// load of the same bytes.
		var buf bytes.Buffer
		if err := idxPool.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		reIdx, err := Load(s, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		reLin, err := Load(s, bytes.NewReader(buf.Bytes()), WithIndexedSelection(false))
		if err != nil {
			t.Fatalf("load linear: %v", err)
		}
		if reIdx.Len() != idxPool.Len() {
			t.Fatalf("round-trip lost entries: %d vs %d", reIdx.Len(), idxPool.Len())
		}
		for _, q := range added {
			got, want := reIdx.TopK(q, 5), reLin.TopK(q, 5)
			if len(got) != len(want) {
				t.Fatalf("post-load TopK size diverged: %d vs %d", len(got), len(want))
			}
			for j := range got {
				if got[j].ID != want[j].ID {
					t.Fatalf("post-load TopK[%d] diverged: ID %d vs %d", j, got[j].ID, want[j].ID)
				}
			}
		}
	})
}
