package pool

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"

	"crn/internal/schema"
	"crn/internal/sqlparse"
)

// The queries pool is envisioned as DBMS meta information that outlives a
// session (§5.2); Save/Load persist it as (SQL, cardinality, last-match
// recency) records so a pool built by one process can serve estimators in
// another. Persisting the recency stamps matters for bounded pools: without
// them a restarted pool would evict in insertion order until traffic
// re-warmed the ticks, throwing away exactly the entries the previous
// process's estimates were using.

// persistEntry is the wire form of one pooled query.
type persistEntry struct {
	SQL  string
	Card int64
	// LastHit is the entry's last-match tick at save time. Only the relative
	// order matters: Load re-inserts entries in ascending LastHit order, so
	// fresh ticks reproduce the saved LRU order exactly.
	LastHit int64
}

// persistPool is the versioned wire envelope (introduced in PR 5; the
// pre-envelope format was a bare entry slice without recency stamps, which
// Load still accepts).
type persistPool struct {
	Entries []persistEntry
}

// Save serializes the pool to w, including the last-match recency order.
func (p *Pool) Save(w io.Writer) error {
	p.mu.RLock()
	entries := make([]persistEntry, 0, p.entries)
	for _, idx := range p.byFrom {
		for i, e := range idx.entries {
			entries = append(entries, persistEntry{
				SQL:     e.Q.SQL(),
				Card:    e.Card,
				LastHit: atomic.LoadInt64(&idx.lastHit[i]),
			})
		}
	}
	p.mu.RUnlock()
	// Ascending recency, ties broken by SQL: map iteration order must not
	// leak into the serialized form, or two saves of one pool would differ.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].LastHit != entries[j].LastHit {
			return entries[i].LastHit < entries[j].LastHit
		}
		return entries[i].SQL < entries[j].SQL
	})
	if err := gob.NewEncoder(w).Encode(persistPool{Entries: entries}); err != nil {
		return fmt.Errorf("pool: save: %w", err)
	}
	return nil
}

// Load reconstructs a pool serialized by Save, re-validating every query
// against the schema. Options configure the restored pool (WithCap bounds
// it); entries are re-inserted in ascending saved recency, so a bounded
// restored pool evicts in the same least-recently-matched order the saved
// pool would have. Legacy payloads without recency stamps load in their
// serialized order.
func Load(s *schema.Schema, r io.Reader, opts ...Option) (*Pool, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("pool: load: %w", err)
	}
	var file persistPool
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&file); err != nil {
		// Pre-envelope payload: a bare entry slice (whose entries decode with
		// zero LastHit, preserving serialized order).
		if legacyErr := gob.NewDecoder(bytes.NewReader(raw)).Decode(&file.Entries); legacyErr != nil {
			return nil, fmt.Errorf("pool: load: %w", err)
		}
	}
	p := New(opts...)
	for _, e := range file.Entries {
		q, err := sqlparse.Parse(s, e.SQL)
		if err != nil {
			return nil, fmt.Errorf("pool: load entry %q: %w", e.SQL, err)
		}
		p.Add(q, e.Card)
	}
	return p, nil
}

// LoadInto replays a snapshot serialized by Save into an existing pool (the
// recovery path: the caller owns the pool handle shared with estimators, so
// restoring must refill that pool rather than swap in a new one). Entries
// are re-inserted in ascending saved recency, exactly as in Load; entries
// already pooled keep their current cardinality unless the snapshot
// disagrees, in which case the snapshot wins (it is the newer truth on the
// boot path, where the pool holds only seed entries). Returns how many
// snapshot entries were applied (added or corrected).
func LoadInto(p *Pool, s *schema.Schema, r io.Reader) (int, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("pool: load: %w", err)
	}
	var file persistPool
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&file); err != nil {
		if legacyErr := gob.NewDecoder(bytes.NewReader(raw)).Decode(&file.Entries); legacyErr != nil {
			return 0, fmt.Errorf("pool: load: %w", err)
		}
	}
	applied := 0
	for _, e := range file.Entries {
		q, err := sqlparse.Parse(s, e.SQL)
		if err != nil {
			return applied, fmt.Errorf("pool: load entry %q: %w", e.SQL, err)
		}
		if p.Add(q, e.Card) || p.UpdateCard(q, e.Card) {
			applied++
		}
	}
	return applied, nil
}

// SaveFile writes the pool to a file.
func (p *Pool) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads a pool from a file written by SaveFile.
func LoadFile(s *schema.Schema, path string, opts ...Option) (*Pool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pool: %w", err)
	}
	return Load(s, bytes.NewReader(data), opts...)
}
