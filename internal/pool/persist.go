package pool

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"crn/internal/schema"
	"crn/internal/sqlparse"
)

// The queries pool is envisioned as DBMS meta information that outlives a
// session (§5.2); Save/Load persist it as (SQL, cardinality) records so a
// pool built by one process can serve estimators in another.

// persistEntry is the wire form of one pooled query.
type persistEntry struct {
	SQL  string
	Card int64
}

// Save serializes the pool to w.
func (p *Pool) Save(w io.Writer) error {
	p.mu.RLock()
	entries := make([]persistEntry, 0, p.entries)
	for _, idx := range p.byFrom {
		for _, e := range idx.entries {
			entries = append(entries, persistEntry{SQL: e.Q.SQL(), Card: e.Card})
		}
	}
	p.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(entries); err != nil {
		return fmt.Errorf("pool: save: %w", err)
	}
	return nil
}

// Load reconstructs a pool serialized by Save, re-validating every query
// against the schema.
func Load(s *schema.Schema, r io.Reader) (*Pool, error) {
	var entries []persistEntry
	if err := gob.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("pool: load: %w", err)
	}
	p := New()
	for _, e := range entries {
		q, err := sqlparse.Parse(s, e.SQL)
		if err != nil {
			return nil, fmt.Errorf("pool: load entry %q: %w", e.SQL, err)
		}
		p.Add(q, e.Card)
	}
	return p, nil
}

// SaveFile writes the pool to a file.
func (p *Pool) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadFile reads a pool from a file written by SaveFile.
func LoadFile(s *schema.Schema, path string) (*Pool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pool: %w", err)
	}
	return Load(s, bytes.NewReader(data))
}
