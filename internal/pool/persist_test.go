package pool

import (
	"bytes"
	"path/filepath"
	"testing"

	"crn/internal/sqlparse"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := New()
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := sqlparse.MustParse(s, "SELECT * FROM cast_info, title WHERE cast_info.movie_id = title.id")
	p.Add(q1, 111)
	p.Add(q2, 222)

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
	if !loaded.Contains(q1) || !loaded.Contains(q2) {
		t.Error("loaded pool missing queries")
	}
	m := loaded.Matching(q1)
	if len(m) != 1 || m[0].Card != 111 {
		t.Errorf("matching = %+v", m)
	}
}

func TestSaveLoadFile(t *testing.T) {
	p := New()
	p.Add(sqlparse.MustParse(s, "SELECT * FROM movie_keyword"), 42)
	path := filepath.Join(t.TempDir(), "pool.gob")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(s, path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Errorf("loaded %d entries", loaded.Len())
	}
	if _, err := LoadFile(s, filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(s, bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("corrupt payload should fail")
	}
}
