// Package pool implements the queries pool of §5.2: a DBMS-side store of
// previously executed queries together with their actual result
// cardinalities (not their results). The pool is hashed by canonical FROM
// clause, because only queries with identical FROM clauses are containment-
// comparable; lookup therefore returns exactly the candidate "old" queries
// the Cnt2Crd technique can use for a new query.
//
// The package also provides the final functions F of §5.3.1 (Median, Mean,
// TrimmedMean) that collapse the per-old-query estimates into one value —
// the paper found Median best and uses it everywhere.
package pool

import (
	"fmt"
	"sort"
	"sync"

	"crn/internal/metrics"
	"crn/internal/query"
)

// Entry is one pooled query with its actual cardinality. ID is a stable
// pool-unique identifier assigned at insertion; batch estimators use it to
// recognize the same entry across many probes without re-deriving canonical
// keys.
type Entry struct {
	Q    query.Query
	Card int64
	ID   int64
}

// Pool is a FROM-clause-indexed collection of executed queries. It is safe
// for concurrent use; in the envisioned deployment the DBMS appends every
// executed query while estimators read concurrently (§5.2).
type Pool struct {
	mu      sync.RWMutex
	byFrom  map[string][]Entry
	byKey   map[string]bool
	entries int
	nextID  int64
	version uint64
}

// New creates an empty pool.
func New() *Pool {
	return &Pool{byFrom: make(map[string][]Entry), byKey: make(map[string]bool)}
}

// Add inserts a query with its actual cardinality. Duplicate queries (same
// canonical form) are ignored, mirroring the paper's unique-queries pools.
// It reports whether the entry was inserted.
func (p *Pool) Add(q query.Query, card int64) bool {
	if card < 0 {
		return false
	}
	key := q.Key()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.byKey[key] {
		return false
	}
	p.byKey[key] = true
	p.byFrom[q.FROMKey()] = append(p.byFrom[q.FROMKey()], Entry{Q: q, Card: card, ID: p.nextID})
	p.nextID++
	p.entries++
	p.version++
	return true
}

// Version returns a counter that increases with every successful mutation.
// Caches keyed on pool contents (the serving-side representation cache)
// compare versions to detect that the pool changed underneath them.
func (p *Pool) Version() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.version
}

// Matching returns the pooled entries whose FROM clause equals the query's
// FROM clause — the candidates for the Cnt2Crd technique. The returned
// slice is a copy and safe to retain.
func (p *Pool) Matching(q query.Query) []Entry {
	return p.AppendMatching(nil, q)
}

// AppendMatching appends the entries matching q's FROM clause to dst and
// returns the extended slice — the allocation-amortizing form of Matching
// for batch estimators that reuse one arena across many probes.
func (p *Pool) AppendMatching(dst []Entry, q query.Query) []Entry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append(dst, p.byFrom[q.FROMKey()]...)
}

// Contains reports whether the exact query is pooled.
func (p *Pool) Contains(q query.Query) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.byKey[q.Key()]
}

// Len returns the number of pooled queries.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.entries
}

// FROMKeys returns the distinct FROM clauses present in the pool.
func (p *Pool) FROMKeys() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.byFrom))
	for k := range p.byFrom {
		out = append(out, k)
	}
	return out
}

// Entries returns a copy of all pooled entries (diagnostics, sweeps).
func (p *Pool) Entries() []Entry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Entry, 0, p.entries)
	for _, es := range p.byFrom {
		out = append(out, es...)
	}
	return out
}

// Subset returns a new pool holding at most n entries, taken round-robin
// across FROM clauses so that every clause stays covered — the construction
// used for the pool-size sweep (Table 14, "equally distributed over all the
// possible FROM clauses").
func (p *Pool) Subset(n int) *Pool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := New()
	if n <= 0 {
		return out
	}
	keys := make([]string, 0, len(p.byFrom))
	for k := range p.byFrom {
		keys = append(keys, k)
	}
	// Deterministic order.
	sort.Strings(keys)
	idx := 0
	for out.entries < n {
		progress := false
		for _, k := range keys {
			es := p.byFrom[k]
			if idx < len(es) {
				out.Add(es[idx].Q, es[idx].Card)
				progress = true
				if out.entries >= n {
					break
				}
			}
		}
		if !progress {
			break
		}
		idx++
	}
	return out
}

// FinalFunc collapses the per-old-query cardinality estimates into the
// final estimate (the function F of §5.3). The caller may reuse the
// slice's backing storage across invocations, so implementations must not
// retain it past the call (copy first if sorting in place or keeping it).
type FinalFunc func([]float64) float64

// Median is the paper's chosen final function (§5.3.1, §6.3).
func Median(results []float64) float64 { return metrics.Median(results) }

// Mean is the arithmetic-mean final function.
func Mean(results []float64) float64 { return metrics.Mean(results) }

// TrimmedMean removes 12.5% of each tail ("the 25% outliers", §5.3.1)
// before averaging.
func TrimmedMean(results []float64) float64 { return metrics.TrimmedMean(results, 0.125) }

// FinalByName resolves a final function by name ("median", "mean",
// "trimmed"); unknown names default to Median.
func FinalByName(name string) (FinalFunc, error) {
	switch name {
	case "", "median":
		return Median, nil
	case "mean":
		return Mean, nil
	case "trimmed":
		return TrimmedMean, nil
	}
	return nil, fmt.Errorf("pool: unknown final function %q", name)
}
