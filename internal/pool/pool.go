// Package pool implements the queries pool of §5.2: a DBMS-side store of
// previously executed queries together with their actual result
// cardinalities (not their results). The pool is hashed by canonical FROM
// clause, because only queries with identical FROM clauses are containment-
// comparable; lookup therefore returns exactly the candidate "old" queries
// the Cnt2Crd technique can use for a new query.
//
// A production pool grows with the workload, so the package also bounds the
// estimator's per-probe cost: every entry carries a predicate Signature
// computed once at Add, and TopK ranks a FROM clause's candidates by
// signature similarity to return only the K most containment-comparable old
// queries (see Signature). WithCap additionally bounds the pool itself,
// evicting the least-recently-matched entry once full.
//
// The package also provides the final functions F of §5.3.1 (Median, Mean,
// TrimmedMean) that collapse the per-old-query estimates into one value —
// the paper found Median best and uses it everywhere.
package pool

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crn/internal/metrics"
	"crn/internal/query"
	"crn/internal/telemetry"
)

// Entry is one pooled query with its actual cardinality. ID is a stable
// pool-unique identifier assigned at insertion; batch estimators use it to
// recognize the same entry across many probes without re-deriving canonical
// keys.
type Entry struct {
	Q    query.Query
	Card int64
	ID   int64
}

// fromIndex is the per-FROM-clause candidate index: the entries themselves
// plus, position-aligned, their precomputed signatures (what TopK scans)
// and last-match ticks (what eviction consults), and a position lookup by
// stable entry ID (what the eviction heap resolves records through). sigs
// and lastHit are mutated only under the pool's write lock; lastHit
// elements are touched with atomics because candidate selection updates
// them under the read lock.
type fromIndex struct {
	entries []Entry
	sigs    []Signature
	lastHit []int64
	byID    map[int64]int

	// classes is the inverted signature-class index over the clause's
	// entries (see invindex.go); nil when indexed selection is disabled.
	// nPos counts entries with Card > 0 — the linear scan's "usable"
	// candidate count, maintained on every mutation so the indexed path
	// reproduces truncation accounting without touching every entry.
	classes map[string]*sigClass
	nPos    int
}

// Pool is a FROM-clause-indexed collection of executed queries. It is safe
// for concurrent use; in the envisioned deployment the DBMS appends every
// executed query while estimators read concurrently (§5.2).
type Pool struct {
	mu      sync.RWMutex
	byFrom  map[string]*fromIndex
	byKey   map[string]int64 // canonical key -> stable entry ID
	entries int
	nextID  int64
	version uint64
	cap     int  // 0: unbounded
	indexOn bool // maintain + consult the inverted signature-class index

	// tick is the logical clock of candidate selection: every Matching/TopK
	// call stamps the entries it returns, and eviction removes the entry
	// with the oldest stamp.
	tick atomic.Int64

	// evictQ is the lazy min-heap over last-match ticks backing O(log n)
	// LRU eviction (see evict.go); maintained only on bounded pools.
	evictQ []evictRec

	// listeners observe mutations synchronously under the write lock; see
	// Subscribe.
	listeners []MutationListener

	evictions      atomic.Uint64
	topKCalls      atomic.Uint64
	scannedIdx     atomic.Uint64 // candidates visited by indexed selections
	scannedFall    atomic.Uint64 // candidates scored by linear-scan selections
	indexHits      atomic.Uint64 // bounded selections served by the index
	indexFallbacks atomic.Uint64 // bounded selections the density guard sent to the scan
	truncated      atomic.Uint64 // TopK calls that actually dropped candidates

	// scannedHist / prunedHist, when non-nil, record the per-call candidate
	// scan work of bounded selection: candidates actually scored, and usable
	// candidates the index's bound pruning never touched. Set once via
	// SetTelemetry before the pool serves reads; nil-safe.
	scannedHist *telemetry.Histogram
	prunedHist  *telemetry.Histogram
}

// Option configures a new pool.
type Option func(*Pool)

// WithCap bounds the pool to n entries: once full, every Add evicts the
// least-recently-matched entry (the one estimates have gone longest without
// selecting) before inserting. Eviction bumps Version, so version-keyed
// caches (the serving representation cache) invalidate correctly. n <= 0
// leaves the pool unbounded.
func WithCap(n int) Option {
	return func(p *Pool) {
		if n > 0 {
			p.cap = n
		}
	}
}

// WithIndexedSelection toggles the inverted signature-class index behind
// TopK (see invindex.go). On by default: indexed selection returns results
// bit-identical to the linear scan at a fraction of its cost on pools with
// recurring predicate structure. Off restores the PR 4 full linear scan —
// useful as an A/B reference and as a memory dial (the index costs a few
// machine words per entry).
func WithIndexedSelection(on bool) Option {
	return func(p *Pool) { p.indexOn = on }
}

// New creates an empty pool.
func New(opts ...Option) *Pool {
	p := &Pool{byFrom: make(map[string]*fromIndex), byKey: make(map[string]int64), indexOn: true}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Cap returns the configured capacity bound (0: unbounded).
func (p *Pool) Cap() int { return p.cap }

// SetTelemetry attaches per-call selection histograms (candidates scanned
// and candidates pruned by bounded selection). Call before the pool serves
// reads: the fields are read without synchronization on the hot path.
func (p *Pool) SetTelemetry(scanned, pruned *telemetry.Histogram) {
	p.scannedHist = scanned
	p.prunedHist = pruned
}

// Add inserts a query with its actual cardinality. Duplicate queries (same
// canonical form) are ignored, mirroring the paper's unique-queries pools.
// On a capacity-bounded pool at its bound, the least-recently-matched entry
// is evicted first. It reports whether the entry was inserted.
func (p *Pool) Add(q query.Query, card int64) bool {
	if card < 0 {
		return false
	}
	key := q.Key()
	sig := ComputeSignature(q) // outside the lock: pure function of q
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.byKey[key]; ok {
		return false
	}
	if p.cap > 0 && p.entries >= p.cap {
		p.evictLRULocked()
	}
	from := q.FROMKey()
	idx := p.byFrom[from]
	if idx == nil {
		idx = &fromIndex{byID: make(map[int64]int)}
		p.byFrom[from] = idx
	}
	id := p.nextID
	p.byKey[key] = id
	idx.byID[id] = len(idx.entries)
	idx.entries = append(idx.entries, Entry{Q: q, Card: card, ID: id})
	idx.sigs = append(idx.sigs, sig)
	if card > 0 {
		idx.nPos++
	}
	if p.indexOn {
		idx.indexAdd(sig, id)
	}
	// A fresh entry starts as most-recently matched: it must survive long
	// enough for estimates to have a chance to select it.
	now := p.tick.Add(1)
	idx.lastHit = append(idx.lastHit, now)
	if p.cap > 0 {
		p.heapPush(evictRec{from: from, id: id, tick: now})
	}
	p.nextID++
	p.entries++
	p.version++
	p.notifyLocked("")
	return true
}

// MutationListener observes pool mutations. Listeners are invoked
// synchronously under the pool's write lock, once per version bump, with
// the post-mutation version; evictedKey carries the canonical key of the
// removed query for evictions and is empty for inserts. Implementations
// must be fast and must not call back into the pool.
//
// The serving representation cache subscribes to turn the conservative
// flush-on-any-mutation invalidation into surgical per-entry invalidation:
// an eviction drops exactly the evicted entry's cached rows and an insert
// drops nothing, so the cached working set stays warm under sustained
// record/feedback traffic.
type MutationListener interface {
	PoolMutated(version uint64, evictedKey string)
}

// Subscribe registers a mutation listener. Subscribing the same listener
// twice is a no-op.
func (p *Pool) Subscribe(l MutationListener) {
	if l == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, have := range p.listeners {
		if have == l {
			return
		}
	}
	p.listeners = append(p.listeners, l)
}

// Unsubscribe removes a previously subscribed listener.
func (p *Pool) Unsubscribe(l MutationListener) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, have := range p.listeners {
		if have == l {
			p.listeners = append(p.listeners[:i], p.listeners[i+1:]...)
			return
		}
	}
}

// notifyLocked fans one mutation out to the listeners. Callers hold the
// write lock and have already bumped the version.
func (p *Pool) notifyLocked(evictedKey string) {
	for _, l := range p.listeners {
		l.PoolMutated(p.version, evictedKey)
	}
}

// Version returns a counter that increases with every successful mutation
// (inserts and evictions alike). Caches keyed on pool contents (the
// serving-side representation cache) compare versions to detect that the
// pool changed underneath them.
func (p *Pool) Version() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.version
}

// Matching returns the pooled entries whose FROM clause equals the query's
// FROM clause — the candidates for the Cnt2Crd technique. The returned
// slice is a copy and safe to retain.
func (p *Pool) Matching(q query.Query) []Entry {
	return p.AppendMatching(nil, q)
}

// AppendMatching appends the entries matching q's FROM clause to dst and
// returns the extended slice — the allocation-amortizing form of Matching
// for batch estimators that reuse one arena across many probes.
func (p *Pool) AppendMatching(dst []Entry, q query.Query) []Entry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	idx := p.byFrom[q.FROMKey()]
	if idx == nil {
		return dst
	}
	p.touchAllLocked(idx)
	return append(dst, idx.entries...)
}

// TopK returns the k most containment-comparable pooled candidates for q,
// ranked by signature similarity (see Signature). The returned slice is a
// copy and safe to retain.
func (p *Pool) TopK(q query.Query, k int) []Entry {
	return p.AppendTopK(nil, q, k)
}

// AppendTopK appends the top-k candidates for q to dst and returns the
// extended slice. k <= 0, or k at least the full candidate count, returns
// exactly what AppendMatching would (same entries, same order), so bounded
// and unbounded estimates coincide whenever the bound does not bind.
// Otherwise candidates with empty results are skipped (they carry no
// information — the estimator drops them anyway) and the k best-scoring
// survivors are appended best-first, ties broken by insertion ID.
func (p *Pool) AppendTopK(dst []Entry, q query.Query, k int) []Entry {
	probe := ComputeSignature(q) // outside the lock: pure function of q
	p.mu.RLock()
	defer p.mu.RUnlock()
	idx := p.byFrom[q.FROMKey()]
	if idx == nil {
		return dst
	}
	if k <= 0 || k >= len(idx.entries) {
		p.touchAllLocked(idx)
		return append(dst, idx.entries...)
	}
	p.topKCalls.Add(1)
	var refs []scoredRef
	var usable int
	var scanned uint64
	indexed := false
	if p.indexOn {
		refs, usable, scanned, indexed = p.selectIndexedLocked(idx, probe, k)
		if !indexed {
			p.indexFallbacks.Add(1)
		}
	}
	if !indexed {
		refs, usable = p.selectLinearLocked(idx, probe, k)
		scanned = uint64(len(idx.entries))
	}
	if p.scannedHist != nil {
		p.scannedHist.Observe(float64(scanned))
		pruned := 0.0
		if indexed && uint64(usable) > scanned {
			pruned = float64(uint64(usable) - scanned)
		}
		p.prunedHist.Observe(pruned)
	}
	if len(refs) < usable {
		p.truncated.Add(1)
	}
	if p.cap > 0 {
		now := p.tick.Add(1)
		for _, r := range refs {
			atomic.StoreInt64(&idx.lastHit[r.idx], now)
		}
	}
	for _, r := range refs {
		dst = append(dst, idx.entries[r.idx])
	}
	return dst
}

// selectLinearLocked is the PR 4 selection path: score every candidate of
// the FROM clause against the probe. Callers hold at least the read lock
// and have checked 0 < k < len(entries). The second return is the usable
// (Card > 0) candidate count, the reference for truncation accounting.
func (p *Pool) selectLinearLocked(idx *fromIndex, probe Signature, k int) ([]scoredRef, int) {
	p.scannedFall.Add(uint64(len(idx.entries)))
	heap := newTopKHeap(k)
	usable := 0
	for i := range idx.entries {
		if idx.entries[i].Card <= 0 {
			// Empty-result entries carry no information; the estimator drops
			// them anyway, so skipping them here is not a truncation.
			continue
		}
		usable++
		heap.offer(scoredRef{score: probe.Similarity(idx.sigs[i]), idx: i, id: idx.entries[i].ID})
	}
	return heap.sorted(), usable
}

// touchAllLocked stamps every entry of an index as just-matched. Callers
// hold at least the read lock; the stores are atomic because concurrent
// readers may stamp the same slots. On an unbounded pool the stamps are
// dead weight (nothing ever evicts), so the default serving configuration
// skips them and the read path stays write-free.
func (p *Pool) touchAllLocked(idx *fromIndex) {
	if p.cap <= 0 {
		return
	}
	now := p.tick.Add(1)
	for i := range idx.lastHit {
		atomic.StoreInt64(&idx.lastHit[i], now)
	}
}

// UpdateCard replaces a pooled query's actual cardinality — execution
// feedback for an already pooled query whose truth moved because the data
// underneath changed (the §9 database-updates case). It reports whether
// an entry was updated (false: not pooled, or the cardinality is
// unchanged). An update bumps Version and notifies listeners like any
// other mutation; cached query representations do not depend on the
// cardinality, so subscribed caches absorb it without dropping anything.
func (p *Pool) UpdateCard(q query.Query, card int64) bool {
	if card < 0 {
		return false
	}
	key := q.Key()
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := p.byKey[key]
	if !ok {
		return false
	}
	idx := p.byFrom[q.FROMKey()]
	if idx == nil {
		return false
	}
	pos, ok := idx.byID[id]
	if !ok || idx.entries[pos].Card == card {
		return false
	}
	if old := idx.entries[pos].Card; (old > 0) != (card > 0) {
		if card > 0 {
			idx.nPos++
		} else {
			idx.nPos--
		}
	}
	idx.entries[pos].Card = card
	p.version++
	p.notifyLocked("")
	return true
}

// Contains reports whether the exact query is pooled.
func (p *Pool) Contains(q query.Query) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.byKey[q.Key()]
	return ok
}

// CardOf returns the pooled true cardinality of the exact query, when
// pooled. It backs label-free feedback labeling: the identity
// rate = |Q1∩Q2|/|Q1| needs the intersection query's cardinality, and the
// pool is where known truths live.
func (p *Pool) CardOf(q query.Query) (int64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	id, ok := p.byKey[q.Key()]
	if !ok {
		return 0, false
	}
	idx := p.byFrom[q.FROMKey()]
	if idx == nil {
		return 0, false
	}
	pos, ok := idx.byID[id]
	if !ok {
		return 0, false
	}
	return idx.entries[pos].Card, true
}

// Len returns the number of pooled queries.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.entries
}

// FROMKeys returns the distinct FROM clauses present in the pool.
func (p *Pool) FROMKeys() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.byFrom))
	for k := range p.byFrom {
		out = append(out, k)
	}
	return out
}

// Entries returns a copy of all pooled entries (diagnostics, sweeps).
func (p *Pool) Entries() []Entry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Entry, 0, p.entries)
	for _, idx := range p.byFrom {
		out = append(out, idx.entries...)
	}
	return out
}

// HotEntries returns up to n entries ordered by last-match recency, most
// recent first (ties broken by insertion ID, newest first) — the working
// set candidate selection is actually using. Cache warming uses it so a
// bounded warm covers the hot entries instead of an arbitrary subset.
// n <= 0 or n >= Len returns every entry (still recency-ordered).
func (p *Pool) HotEntries(n int) []Entry {
	type stamped struct {
		e    Entry
		tick int64
	}
	p.mu.RLock()
	all := make([]stamped, 0, p.entries)
	for _, idx := range p.byFrom {
		for i := range idx.entries {
			all = append(all, stamped{e: idx.entries[i], tick: atomic.LoadInt64(&idx.lastHit[i])})
		}
	}
	p.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].tick != all[j].tick {
			return all[i].tick > all[j].tick
		}
		return all[i].e.ID > all[j].e.ID
	})
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	out := make([]Entry, len(all))
	for i, s := range all {
		out[i] = s.e
	}
	return out
}

// Stats is a point-in-time snapshot of the pool and its candidate index.
type Stats struct {
	Entries  int `json:"entries"`
	FROMKeys int `json:"from_keys"`
	Capacity int `json:"capacity"` // 0: unbounded
	// Evictions counts entries removed by the capacity bound.
	Evictions uint64 `json:"evictions"`
	// TopKCalls counts bounded candidate selections (full-scan fallbacks,
	// where the bound did not bind, are excluded).
	TopKCalls uint64 `json:"topk_calls"`
	// ScannedCandidates is the total number of candidates visited across all
	// TopKCalls — the selection-side cost of bounded selection; the sum of
	// ScannedIndexed and ScannedFallback.
	ScannedCandidates uint64 `json:"scanned_candidates"`
	// ScannedIndexed counts candidates visited by index-served selections —
	// sublinear in the FROM clause's entry count when classes recur.
	ScannedIndexed uint64 `json:"scanned_indexed"`
	// ScannedFallback counts candidates scored by linear-scan selections
	// (index disabled, or the density guard rejected the clause).
	ScannedFallback uint64 `json:"scanned_fallback"`
	// IndexHits counts bounded selections served by the signature-class
	// index; IndexFallbacks counts those the density guard sent to the
	// linear scan. Hits + fallbacks = TopKCalls on an index-enabled pool;
	// both stay zero with WithIndexedSelection(false).
	IndexHits      uint64 `json:"index_hits"`
	IndexFallbacks uint64 `json:"index_fallbacks"`
	// TruncatedCalls counts TopK selections that dropped at least one
	// candidate (the bound actually bound).
	TruncatedCalls uint64 `json:"truncated_calls"`
}

// Stats returns the pool's index and eviction counters.
func (p *Pool) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	si, sf := p.scannedIdx.Load(), p.scannedFall.Load()
	return Stats{
		Entries:           p.entries,
		FROMKeys:          len(p.byFrom),
		Capacity:          p.cap,
		Evictions:         p.evictions.Load(),
		TopKCalls:         p.topKCalls.Load(),
		ScannedCandidates: si + sf,
		ScannedIndexed:    si,
		ScannedFallback:   sf,
		IndexHits:         p.indexHits.Load(),
		IndexFallbacks:    p.indexFallbacks.Load(),
		TruncatedCalls:    p.truncated.Load(),
	}
}

// Subset returns a new pool holding at most n entries, taken round-robin
// across FROM clauses so that every clause stays covered — the construction
// used for the pool-size sweep (Table 14, "equally distributed over all the
// possible FROM clauses").
func (p *Pool) Subset(n int) *Pool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := New()
	if n <= 0 {
		return out
	}
	keys := make([]string, 0, len(p.byFrom))
	for k := range p.byFrom {
		keys = append(keys, k)
	}
	// Deterministic order.
	sort.Strings(keys)
	idx := 0
	for out.entries < n {
		progress := false
		for _, k := range keys {
			es := p.byFrom[k].entries
			if idx < len(es) {
				out.Add(es[idx].Q, es[idx].Card)
				progress = true
				if out.entries >= n {
					break
				}
			}
		}
		if !progress {
			break
		}
		idx++
	}
	return out
}

// FinalFunc collapses the per-old-query cardinality estimates into the
// final estimate (the function F of §5.3). The caller may reuse the
// slice's backing storage across invocations, so implementations must not
// retain it past the call (copy first if sorting in place or keeping it).
type FinalFunc func([]float64) float64

// Median is the paper's chosen final function (§5.3.1, §6.3).
func Median(results []float64) float64 { return metrics.Median(results) }

// Mean is the arithmetic-mean final function.
func Mean(results []float64) float64 { return metrics.Mean(results) }

// TrimmedMean removes 12.5% of each tail ("the 25% outliers", §5.3.1)
// before averaging.
func TrimmedMean(results []float64) float64 { return metrics.TrimmedMean(results, 0.125) }

// FinalByName resolves a final function by name ("median", "mean",
// "trimmed"); unknown names default to Median.
func FinalByName(name string) (FinalFunc, error) {
	switch name {
	case "", "median":
		return Median, nil
	case "mean":
		return Mean, nil
	case "trimmed":
		return TrimmedMean, nil
	}
	return nil, fmt.Errorf("pool: unknown final function %q", name)
}
