package pool

import (
	"fmt"
	"sync"
	"testing"

	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func TestAddAndMatching(t *testing.T) {
	p := New()
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 2")
	q3 := sqlparse.MustParse(s, "SELECT * FROM cast_info")
	if !p.Add(q1, 100) || !p.Add(q2, 200) || !p.Add(q3, 300) {
		t.Fatal("inserts should succeed")
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 5")
	m := p.Matching(probe)
	if len(m) != 2 {
		t.Fatalf("Matching = %d entries, want 2", len(m))
	}
	for _, e := range m {
		if e.Q.FROMKey() != "title" {
			t.Errorf("wrong FROM: %s", e.Q.FROMKey())
		}
	}
	if len(p.Matching(sqlparse.MustParse(s, "SELECT * FROM movie_info"))) != 0 {
		t.Error("no matches expected for unseen FROM clause")
	}
}

func TestAddDeduplicates(t *testing.T) {
	p := New()
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	if !p.Add(q1, 100) {
		t.Fatal("first insert should succeed")
	}
	if p.Add(q1, 999) {
		t.Error("duplicate insert should be rejected")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d", p.Len())
	}
	if !p.Contains(q1) {
		t.Error("Contains should find pooled query")
	}
}

func TestAddRejectsNegativeCard(t *testing.T) {
	p := New()
	if p.Add(sqlparse.MustParse(s, "SELECT * FROM title"), -1) {
		t.Error("negative cardinality should be rejected")
	}
}

func TestMatchingReturnsCopy(t *testing.T) {
	p := New()
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	p.Add(q1, 100)
	m := p.Matching(q1)
	m[0].Card = 12345
	m2 := p.Matching(q1)
	if m2[0].Card != 100 {
		t.Error("Matching should return a copy")
	}
}

func TestFROMKeysAndEntries(t *testing.T) {
	p := New()
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title"), 10)
	p.Add(sqlparse.MustParse(s, "SELECT * FROM cast_info"), 20)
	keys := p.FROMKeys()
	if len(keys) != 2 {
		t.Errorf("FROMKeys = %v", keys)
	}
	if len(p.Entries()) != 2 {
		t.Errorf("Entries = %d", len(p.Entries()))
	}
}

func TestSubsetRoundRobin(t *testing.T) {
	p := New()
	// Two FROM clauses, 4 queries each.
	for i := 0; i < 4; i++ {
		p.Add(sqlparse.MustParse(s, fmt.Sprintf("SELECT * FROM title WHERE title.kind_id = %d", i+1)), int64(i))
		p.Add(sqlparse.MustParse(s, fmt.Sprintf("SELECT * FROM cast_info WHERE cast_info.role_id = %d", i+1)), int64(i))
	}
	sub := p.Subset(4)
	if sub.Len() != 4 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	// Round-robin must cover both FROM clauses.
	if len(sub.FROMKeys()) != 2 {
		t.Errorf("Subset FROM coverage = %v", sub.FROMKeys())
	}
	// Requesting more than available returns everything.
	all := p.Subset(100)
	if all.Len() != p.Len() {
		t.Errorf("oversized Subset len = %d, want %d", all.Len(), p.Len())
	}
	if p.Subset(0).Len() != 0 {
		t.Error("Subset(0) should be empty")
	}
}

func TestFinalFunctions(t *testing.T) {
	results := []float64{1, 2, 3, 4, 1000}
	if got := Median(results); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := Mean(results); got != 202 {
		t.Errorf("Mean = %v", got)
	}
	// With 8+ values the 12.5% trim drops one value from each tail, so the
	// giant outlier disappears.
	spread := []float64{1, 2, 3, 4, 5, 6, 7, 1000}
	tm := TrimmedMean(spread)
	if tm >= Mean(spread) {
		t.Errorf("TrimmedMean %v should be below Mean %v", tm, Mean(spread))
	}
	if tm != 4.5 {
		t.Errorf("TrimmedMean = %v, want 4.5", tm)
	}
}

func TestFinalByName(t *testing.T) {
	for _, name := range []string{"", "median", "mean", "trimmed"} {
		f, err := FinalByName(name)
		if err != nil || f == nil {
			t.Errorf("FinalByName(%q) failed: %v", name, err)
		}
	}
	if _, err := FinalByName("mode"); err == nil {
		t.Error("unknown final function should fail")
	}
}

func TestConcurrentAddAndMatch(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sql := fmt.Sprintf("SELECT * FROM title WHERE title.episode_nr = %d", w*50+i)
				p.Add(sqlparse.MustParse(s, sql), int64(i))
				p.Matching(sqlparse.MustParse(s, "SELECT * FROM title"))
			}
		}(w)
	}
	wg.Wait()
	if p.Len() != 200 {
		t.Errorf("Len = %d, want 200", p.Len())
	}
}

func TestUpdateCard(t *testing.T) {
	p := New()
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	if p.UpdateCard(q, 5) {
		t.Fatal("updating an unpooled query must be a no-op")
	}
	p.Add(q, 100)
	v := p.Version()
	if p.UpdateCard(q, 100) {
		t.Fatal("unchanged cardinality must not count as an update")
	}
	if p.Version() != v {
		t.Fatal("no-op update must not bump Version")
	}
	if !p.UpdateCard(q, 40) {
		t.Fatal("moved cardinality must update")
	}
	if p.Version() <= v {
		t.Fatal("update must bump Version")
	}
	if m := p.Matching(q); len(m) != 1 || m[0].Card != 40 {
		t.Fatalf("matching after update = %+v", m)
	}
	if p.UpdateCard(q, -1) {
		t.Fatal("negative cardinality must be rejected")
	}
}

func TestHotEntriesRecencyOrder(t *testing.T) {
	p := New(WithCap(8))
	qa := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	qb := sqlparse.MustParse(s, "SELECT * FROM cast_info")
	qc := sqlparse.MustParse(s, "SELECT * FROM movie_keyword")
	p.Add(qa, 1) // tick 1
	p.Add(qb, 2) // tick 2
	p.Add(qc, 3) // tick 3
	// Touch qa last: it becomes the hottest entry.
	p.Matching(sqlparse.MustParse(s, "SELECT * FROM title"))

	hot := p.HotEntries(2)
	if len(hot) != 2 || hot[0].Q.Key() != qa.Key() || hot[1].Q.Key() != qc.Key() {
		keys := make([]string, len(hot))
		for i, e := range hot {
			keys[i] = e.Q.Key()
		}
		t.Fatalf("HotEntries(2) = %v, want [qa qc]", keys)
	}
	if all := p.HotEntries(0); len(all) != 3 {
		t.Fatalf("HotEntries(0) = %d entries, want all 3", len(all))
	}
}
