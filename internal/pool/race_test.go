package pool

import (
	"fmt"
	"sync"
	"testing"

	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

// TestConcurrentPoolAccess hammers the pool from concurrent goroutines in
// the serving pattern of §5.2: writers append executed queries while
// readers scan for matches and snapshot subsets. Run with -race (CI does);
// the assertions only check conservation invariants, the detector checks
// the synchronization.
func TestConcurrentPoolAccess(t *testing.T) {
	s := schema.IMDB()
	p := New()

	const writers = 4
	const readers = 4
	const perWriter = 200

	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")

	queries := make([][]query.Query, writers)
	for w := range queries {
		queries[w] = make([]query.Query, perWriter)
		for i := range queries[w] {
			queries[w][i] = sqlparse.MustParse(s, fmt.Sprintf(
				"SELECT * FROM title WHERE title.production_year > %d", w*perWriter+i))
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i, q := range queries[w] {
				if !p.Add(q, int64(i+1)) {
					t.Errorf("writer %d: duplicate rejection for unique query %d", w, i)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				matches := p.Matching(probe)
				for _, m := range matches {
					if m.Card <= 0 {
						t.Errorf("matching returned card %d", m.Card)
					}
				}
				sub := p.Subset(10)
				if sub.Len() > 10 {
					t.Errorf("subset overflow: %d", sub.Len())
				}
				_ = p.Len()
				_ = p.FROMKeys()
				_ = p.Contains(probe)
				_ = p.Entries()
			}
		}()
	}
	close(start)
	wg.Wait()

	if got, want := p.Len(), writers*perWriter; got != want {
		t.Errorf("pool size = %d, want %d", got, want)
	}
	if got := len(p.Matching(probe)); got != writers*perWriter {
		t.Errorf("matches = %d, want %d", got, writers*perWriter)
	}
	// Every entry was added exactly once; re-adding is a no-op.
	if p.Add(queries[0][0], 1) {
		t.Error("duplicate add succeeded")
	}
}

// TestConcurrentTopKAndEviction hammers the bounded pool: writers push the
// pool over its capacity (every Add evicts) while readers run bounded and
// unbounded candidate selection, whose last-match stamps feed the eviction
// policy. Run with -race; assertions only check capacity conservation.
func TestConcurrentTopKAndEviction(t *testing.T) {
	s := schema.IMDB()
	const capacity = 64
	p := New(WithCap(capacity))

	const writers = 4
	const readers = 4
	const perWriter = 150

	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950")

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				q := sqlparse.MustParse(s, fmt.Sprintf(
					"SELECT * FROM title WHERE title.production_year > %d", w*perWriter+i))
				p.Add(q, int64(i+1))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				if got := p.TopK(probe, 8); len(got) > 8 {
					t.Errorf("TopK(8) returned %d entries", len(got))
				}
				_ = p.Matching(probe)
				_ = p.Version()
				_ = p.Stats()
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := p.Len(); got != capacity {
		t.Errorf("pool size = %d, want capacity %d", got, capacity)
	}
	st := p.Stats()
	if want := uint64(writers*perWriter - capacity); st.Evictions != want {
		t.Errorf("evictions = %d, want %d", st.Evictions, want)
	}
}
