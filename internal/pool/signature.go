package pool

import (
	"math/bits"
	"sort"

	"crn/internal/query"
	"crn/internal/schema"
)

// Signature is a compact summary of one query's predicate structure,
// computed once when the query enters the pool and scanned — instead of the
// query itself — when a probe asks for its most containment-comparable
// candidates (TopK). It captures, schema-free (column and join identities
// are hashed into 64-bit masks), the three things that decide whether the
// Cnt2Crd transformation extracts signal from an (old, new) pair:
//
//   - which columns each side constrains (column-set bitmask): a column the
//     old query constrains but the new one does not drives the y_rate
//     Qnew ⊂% Qold toward zero and into the ε guard;
//   - how each column is constrained (per-operator-class masks and the
//     conjunction's per-column value interval): overlapping ranges keep
//     both rates informative, disjoint ranges zero them out;
//   - which join edges each side applies (join bitmask): a differing join
//     set changes the result shape the same way extra predicates do.
//
// Hash collisions (two columns sharing a mask bit) only blur the ranking —
// selection stays a strict subset of the FROM-clause candidates, so they
// can never make an incomparable pair comparable.
type Signature struct {
	Cols  uint64             // mask of predicate columns
	Joins uint64             // mask of join edges
	Ops   [numOpClass]uint64 // per-operator-class column masks (<, =, >)

	// ranges holds the conjunction's value interval per predicate column,
	// sorted by column hash for merge-joining two signatures.
	ranges []colRange
}

// numOpClass is the number of predicate operator classes (<, =, >).
const numOpClass = 3

// colRange is the value interval a conjunction of predicates pins one
// column to. Unbounded sides are marked rather than saturated so interval
// similarity can treat "no constraint" distinctly from "huge range".
type colRange struct {
	col      uint64 // column hash (identity for merging, bit source for masks)
	lo, hi   int64
	hasLo    bool
	hasHi    bool
	conflict bool // contradictory conjunction (e.g. =1 AND =2): empty range
}

// opClass maps a predicate operator to its class ordinal.
func opClass(op string) int {
	switch op {
	case schema.OpLT:
		return 0
	case schema.OpEQ:
		return 1
	default: // schema.OpGT
		return 2
	}
}

// hashString is FNV-1a, the same mixing the rep cache uses for sharding;
// signatures only need stable, well-spread identities.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ComputeSignature summarizes q. It is pure and deterministic: equal
// canonical queries yield equal signatures.
func ComputeSignature(q query.Query) Signature {
	var sig Signature
	for _, j := range q.Joins {
		sig.Joins |= 1 << (hashString(schema.EdgeKey(j.Left, j.Right)) & 63)
	}
	for _, p := range q.Preds {
		col := hashString(p.Col.String())
		bit := uint64(1) << (col & 63)
		sig.Cols |= bit
		sig.Ops[opClass(p.Op)] |= bit
		sig.ranges = tightenRange(sig.ranges, col, p)
	}
	// Canonical predicate order sorts by column STRING; the merge-join in
	// Similarity walks intervals by column HASH.
	sortRanges(sig.ranges)
	return sig
}

// tightenRange intersects predicate p into the interval of its column,
// appending a fresh interval for a first-seen column. Predicates arrive in
// canonical order (sorted by column string), so ranges stay grouped by
// column; the final slice is re-sorted by hash before use.
func tightenRange(ranges []colRange, col uint64, p query.Predicate) []colRange {
	var r *colRange
	for i := range ranges {
		if ranges[i].col == col {
			r = &ranges[i]
			break
		}
	}
	if r == nil {
		ranges = append(ranges, colRange{col: col})
		r = &ranges[len(ranges)-1]
	}
	switch p.Op {
	case schema.OpLT: // col < v  =>  hi = min(hi, v-1)
		if !r.hasHi || p.Val-1 < r.hi {
			r.hi, r.hasHi = p.Val-1, true
		}
	case schema.OpGT: // col > v  =>  lo = max(lo, v+1)
		if !r.hasLo || p.Val+1 > r.lo {
			r.lo, r.hasLo = p.Val+1, true
		}
	case schema.OpEQ:
		if !r.hasLo || p.Val > r.lo {
			r.lo, r.hasLo = p.Val, true
		}
		if !r.hasHi || p.Val < r.hi {
			r.hi, r.hasHi = p.Val, true
		}
	}
	if r.hasLo && r.hasHi && r.lo > r.hi {
		r.conflict = true
	}
	return ranges
}

// sortRanges orders a signature's intervals by column hash (insertion sort:
// queries carry a handful of predicates).
func sortRanges(ranges []colRange) {
	for i := 1; i < len(ranges); i++ {
		for j := i; j > 0 && ranges[j-1].col > ranges[j].col; j-- {
			ranges[j-1], ranges[j] = ranges[j], ranges[j-1]
		}
	}
}

// Similarity scoring weights. The ranking favors old queries whose
// constraint set is dominated by the probe's: a shared column with an
// overlapping range keeps both containment rates informative; a column only
// the OLD query constrains shrinks y_rate = Qnew ⊂% Qold toward the ε guard
// (the candidate contributes nothing), so it is penalized hardest; a column
// only the NEW query constrains merely tightens x_rate and often marks a
// containing anchor (y_rate ≈ 1), so its penalty is mild. Values are
// heuristic; the accuracy gate in internal/experiments pins the ranking's
// effect on median q-error.
const (
	wSharedCol   = 2.0
	wExtraOldCol = 1.5
	wExtraNewCol = 0.25
	wOpClass     = 0.25
	wRange       = 1.0
	wSharedJoin  = 1.0
	wJoinDiff    = 1.0
)

// Similarity scores how containment-comparable an old query's signature is
// to the probe's, higher is better. Deterministic and symmetric in nothing:
// the probe is the NEW query, old is the pooled one.
func (probe Signature) Similarity(old Signature) float64 {
	shared := probe.Cols & old.Cols
	score := wSharedCol*float64(popcount(shared)) -
		wExtraOldCol*float64(popcount(old.Cols&^probe.Cols)) -
		wExtraNewCol*float64(popcount(probe.Cols&^old.Cols))
	for c := 0; c < numOpClass; c++ {
		score += wOpClass * float64(popcount(probe.Ops[c]&old.Ops[c]&shared))
	}
	score += wSharedJoin*float64(popcount(probe.Joins&old.Joins)) -
		wJoinDiff*float64(popcount(probe.Joins^old.Joins))
	// Merge-join the per-column intervals of columns both sides constrain.
	i, j := 0, 0
	for i < len(probe.ranges) && j < len(old.ranges) {
		a, b := &probe.ranges[i], &old.ranges[j]
		switch {
		case a.col < b.col:
			i++
		case a.col > b.col:
			j++
		default:
			score += wRange * rangeAffinity(*a, *b)
			i++
			j++
		}
	}
	return score
}

// rangeAffinity returns the interval similarity of two per-column ranges in
// [-1, 1]: 1 for identical bounded ranges, a Jaccard-style fraction for
// partial overlap, 0 when one side is effectively unbounded, and -1 for
// provably disjoint ranges (the pair's rates are pinned at 0, the candidate
// is dead weight).
func rangeAffinity(a, b colRange) float64 {
	if a.conflict || b.conflict {
		return -1
	}
	// Disjointness is decidable whenever one side's lower bound exceeds the
	// other's upper bound.
	if (a.hasLo && b.hasHi && a.lo > b.hi) || (b.hasLo && a.hasHi && b.lo > a.hi) {
		return -1
	}
	if !a.hasLo && !a.hasHi || !b.hasLo && !b.hasHi {
		return 0
	}
	// Jaccard on bounded intervals below; a half-bounded pair that overlaps
	// falls through to a flat weak-signal score (its overlap has no
	// measurable fraction).
	aw, awOK := width(a)
	bw, bwOK := width(b)
	if awOK && bwOK {
		lo := a.lo
		if b.lo > lo {
			lo = b.lo
		}
		hi := a.hi
		if b.hi < hi {
			hi = b.hi
		}
		inter := float64(hi-lo) + 1
		if inter < 0 {
			inter = 0
		}
		union := aw + bw - inter
		if union <= 0 {
			return 1
		}
		return inter / union
	}
	// One side half-bounded: overlapping but not measurable — weak signal.
	return 0.5
}

// width returns the element count of a bounded interval.
func width(r colRange) (float64, bool) {
	if !r.hasLo || !r.hasHi {
		return 0, false
	}
	return float64(r.hi-r.lo) + 1, true
}

// popcount narrows bits.OnesCount64 (a compiler intrinsic — a single POPCNT
// on amd64) at the scoring loop's call sites.
func popcount(x uint64) int { return bits.OnesCount64(x) }

// scoredRef is one candidate during top-K selection: its index in the FROM
// index plus its score. Ordering: better = higher score, ties broken by
// smaller entry ID (older insertion) for determinism.
type scoredRef struct {
	score float64
	idx   int
	id    int64
}

// better reports whether a should outrank b.
func (a scoredRef) better(b scoredRef) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// topKHeap is a fixed-capacity min-heap on better-ness: the root is the
// WORST of the current best K, so a new candidate only pays heap work when
// it beats the root. Selection over n candidates costs O(n) score
// comparisons plus O(k log k) heap churn.
type topKHeap struct {
	refs []scoredRef
	k    int
}

func newTopKHeap(k int) *topKHeap {
	return &topKHeap{refs: make([]scoredRef, 0, k), k: k}
}

func (h *topKHeap) offer(r scoredRef) {
	if len(h.refs) < h.k {
		h.refs = append(h.refs, r)
		h.up(len(h.refs) - 1)
		return
	}
	if !r.better(h.refs[0]) {
		return
	}
	h.refs[0] = r
	h.down(0)
}

func (h *topKHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		// Invariant: a parent is WORSE than (or equal to) its children, so
		// the root is the worst kept candidate. Sift up while the parent is
		// better than the new element.
		if !h.refs[p].better(h.refs[i]) {
			return
		}
		h.refs[p], h.refs[i] = h.refs[i], h.refs[p]
		i = p
	}
}

func (h *topKHeap) down(i int) {
	n := len(h.refs)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.refs[worst].better(h.refs[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.refs[worst].better(h.refs[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.refs[i], h.refs[worst] = h.refs[worst], h.refs[i]
		i = worst
	}
}

// sorted returns the selected candidates best-first (score descending, ID
// ascending on ties) — the deterministic output order of TopK.
func (h *topKHeap) sorted() []scoredRef {
	refs := h.refs
	sort.Slice(refs, func(i, j int) bool { return refs[i].better(refs[j]) })
	return refs
}
