package pool

import (
	"sort"

	"crn/internal/query"
)

// Signature is the compact predicate-structure summary scanned during
// candidate selection. Its definition lived here through PR 7 and moved to
// internal/query in PR 8 so a query.Query can carry its signature
// precomputed alongside the canonical key (the coalesced batch path probes
// the pool once per query — recomputing the signature per probe was the
// last redundant work on that path). The pool-side name is kept as an alias
// for the package's own files and tests.
type Signature = query.Signature

// numOpClass is the number of predicate operator classes (<, =, >).
const numOpClass = query.NumOpClass

// ComputeSignature summarizes q: the cached signature for queries built by
// query.New / Intersect / WithPredicate (one pointer read), a fresh
// computation for literal-built values. Pure and deterministic: equal
// canonical queries yield equal signatures.
func ComputeSignature(q query.Query) Signature { return q.Signature() }

// scoredRef is one candidate during top-K selection: its index in the FROM
// index plus its score. Ordering: better = higher score, ties broken by
// smaller entry ID (older insertion) for determinism.
type scoredRef struct {
	score float64
	idx   int
	id    int64
}

// better reports whether a should outrank b.
func (a scoredRef) better(b scoredRef) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// topKHeap is a fixed-capacity min-heap on better-ness: the root is the
// WORST of the current best K, so a new candidate only pays heap work when
// it beats the root. Selection over n candidates costs O(n) score
// comparisons plus O(k log k) heap churn. Because better-ness is a strict
// total order (IDs are unique), the kept set depends only on the offered
// multiset, not the offer order — the indexed and linear selection paths
// produce bit-identical results.
type topKHeap struct {
	refs []scoredRef
	k    int
}

func newTopKHeap(k int) *topKHeap {
	return &topKHeap{refs: make([]scoredRef, 0, k), k: k}
}

func (h *topKHeap) offer(r scoredRef) {
	if len(h.refs) < h.k {
		h.refs = append(h.refs, r)
		h.up(len(h.refs) - 1)
		return
	}
	if !r.better(h.refs[0]) {
		return
	}
	h.refs[0] = r
	h.down(0)
}

// full reports whether the heap holds k candidates; h.refs[0] is then the
// worst kept candidate, the pruning threshold of the indexed path.
func (h *topKHeap) full() bool { return len(h.refs) == h.k }

func (h *topKHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		// Invariant: a parent is WORSE than (or equal to) its children, so
		// the root is the worst kept candidate. Sift up while the parent is
		// better than the new element.
		if !h.refs[p].better(h.refs[i]) {
			return
		}
		h.refs[p], h.refs[i] = h.refs[i], h.refs[p]
		i = p
	}
}

func (h *topKHeap) down(i int) {
	n := len(h.refs)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.refs[worst].better(h.refs[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.refs[worst].better(h.refs[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.refs[i], h.refs[worst] = h.refs[worst], h.refs[i]
		i = worst
	}
}

// sorted returns the selected candidates best-first (score descending, ID
// ascending on ties) — the deterministic output order of TopK.
func (h *topKHeap) sorted() []scoredRef {
	refs := h.refs
	sort.Slice(refs, func(i, j int) bool { return refs[i].better(refs[j]) })
	return refs
}
