package pool

import (
	"fmt"
	"testing"

	"crn/internal/sqlparse"
)

func sig(t *testing.T, sql string) Signature {
	t.Helper()
	return ComputeSignature(sqlparse.MustParse(s, sql))
}

func TestSignatureDeterministic(t *testing.T) {
	a := sig(t, "SELECT * FROM title WHERE title.kind_id = 1 AND title.production_year > 1990")
	b := sig(t, "SELECT * FROM title WHERE title.production_year > 1990 AND title.kind_id = 1")
	if a.Cols != b.Cols || a.Joins != b.Joins || a.Ops != b.Ops {
		t.Fatalf("signature masks differ for equivalent queries: %+v vs %+v", a, b)
	}
	if got := a.Similarity(b); got != b.Similarity(a) || got != a.Similarity(a) {
		t.Fatalf("equal queries should score identically: %v vs %v", got, a.Similarity(a))
	}
}

func TestSignatureRanking(t *testing.T) {
	probe := sig(t, "SELECT * FROM title WHERE title.production_year > 1990")

	// Same column, overlapping range: the most comparable candidate.
	overlap := sig(t, "SELECT * FROM title WHERE title.production_year > 1985")
	// Same column, disjoint range (year in 1900..1910 vs > 1990 is decided
	// disjoint only when both sides bound; > vs < here IS decidable).
	disjoint := sig(t, "SELECT * FROM title WHERE title.production_year < 1950")
	// Different column entirely: the old query constrains something the
	// probe does not, pushing y_rate to 0.
	other := sig(t, "SELECT * FROM title WHERE title.kind_id = 3")
	// No predicates at all: a containing anchor; mildly penalized but far
	// better than a conflicting constraint.
	anchor := sig(t, "SELECT * FROM title")

	so, sd, st, sa := probe.Similarity(overlap), probe.Similarity(disjoint),
		probe.Similarity(other), probe.Similarity(anchor)
	if !(so > sd) {
		t.Errorf("overlapping range (%v) should outrank disjoint range (%v)", so, sd)
	}
	if !(so > st) {
		t.Errorf("shared column (%v) should outrank foreign column (%v)", so, st)
	}
	if !(sa > st) {
		t.Errorf("anchor (%v) should outrank foreign-column candidate (%v)", sa, st)
	}
}

func TestSignatureRangeConflict(t *testing.T) {
	probe := sig(t, "SELECT * FROM title WHERE title.kind_id = 2")
	conflict := sig(t, "SELECT * FROM title WHERE title.kind_id = 1 AND title.kind_id = 3")
	same := sig(t, "SELECT * FROM title WHERE title.kind_id = 2")
	if probe.Similarity(conflict) >= probe.Similarity(same) {
		t.Errorf("contradictory conjunction should rank below an identical predicate")
	}
}

func TestSignatureJoins(t *testing.T) {
	probe := sig(t, "SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id")
	sameJoin := sig(t, "SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND cast_info.role_id = 2")
	noJoin := sig(t, "SELECT * FROM title, cast_info")
	if probe.Similarity(sameJoin) <= probe.Similarity(noJoin) {
		t.Errorf("shared join edge should improve the score")
	}
}

func TestTopKFullFallbackMatchesMatching(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.Add(sqlparse.MustParse(s, fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d", 1900+i)), int64(i+1))
	}
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950")
	full := p.Matching(probe)
	for _, k := range []int{0, -3, 10, 11, 1000} {
		got := p.TopK(probe, k)
		if len(got) != len(full) {
			t.Fatalf("TopK(%d) returned %d entries, want %d", k, len(got), len(full))
		}
		for i := range got {
			if got[i].ID != full[i].ID {
				t.Fatalf("TopK(%d)[%d] = ID %d, want ID %d (order must match Matching)",
					k, i, got[i].ID, full[i].ID)
			}
		}
	}
	if st := p.Stats(); st.TopKCalls != 0 {
		t.Errorf("full-fallback selections should not count as TopK calls: %+v", st)
	}
}

func TestTopKSelectsMostSimilar(t *testing.T) {
	p := New()
	// 20 decoys on a foreign column, 3 near-misses on the probe's column.
	for i := 0; i < 20; i++ {
		p.Add(sqlparse.MustParse(s, fmt.Sprintf(
			"SELECT * FROM title WHERE title.kind_id = %d", i)), 50)
	}
	wantIDs := make(map[int64]bool)
	for i := 0; i < 3; i++ {
		q := sqlparse.MustParse(s, fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d", 1980+i))
		p.Add(q, 100)
		wantIDs[int64(20+i)] = true
	}
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1985")
	got := p.TopK(probe, 3)
	if len(got) != 3 {
		t.Fatalf("TopK(3) returned %d entries", len(got))
	}
	for _, e := range got {
		if !wantIDs[e.ID] {
			t.Errorf("TopK selected decoy entry %d (%s)", e.ID, e.Q.SQL())
		}
	}
	st := p.Stats()
	if st.TopKCalls != 1 || st.TruncatedCalls != 1 || st.IndexHits != 1 || st.IndexFallbacks != 0 {
		t.Errorf("unexpected index stats: %+v", st)
	}
	// The signature-class index prunes the decoy class (its similarity upper
	// bound loses to the three kept candidates), so indexed selection visits
	// exactly the 3 near-misses where the linear scan scored all 23.
	if st.ScannedIndexed != 3 || st.ScannedFallback != 0 || st.ScannedCandidates != 3 {
		t.Errorf("unexpected scan split: %+v", st)
	}
	// The linear reference pool scores every candidate and reports it on the
	// fallback counter.
	lin := New(WithIndexedSelection(false))
	for _, e := range p.Entries() {
		lin.Add(e.Q, e.Card)
	}
	lin.TopK(probe, 3)
	if st := lin.Stats(); st.ScannedFallback != 23 || st.ScannedIndexed != 0 ||
		st.ScannedCandidates != 23 || st.IndexHits != 0 || st.IndexFallbacks != 0 {
		t.Errorf("unexpected linear-pool scan split: %+v", st)
	}
}

func TestTopKSkipsEmptyResults(t *testing.T) {
	p := New()
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1990"), 0)
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1991"), 5)
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1992"), 5)
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1989")
	got := p.TopK(probe, 2)
	for _, e := range got {
		if e.Card == 0 {
			t.Errorf("TopK returned an empty-result entry under truncation")
		}
	}
}

func TestTopKDeterministicOrder(t *testing.T) {
	p := New()
	for i := 0; i < 8; i++ {
		// All candidates identical up to the predicate value: scores tie in
		// bunches, the ID tie-break must make the order reproducible.
		p.Add(sqlparse.MustParse(s, fmt.Sprintf(
			"SELECT * FROM title WHERE title.kind_id = %d", i%2)), 10)
	}
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 0")
	first := p.TopK(probe, 3)
	for trial := 0; trial < 5; trial++ {
		again := p.TopK(probe, 3)
		for i := range first {
			if again[i].ID != first[i].ID {
				t.Fatalf("TopK order not deterministic: trial %d slot %d", trial, i)
			}
		}
	}
}

func TestWithCapEvictsLRU(t *testing.T) {
	p := New(WithCap(4))
	if p.Cap() != 4 {
		t.Fatalf("Cap = %d", p.Cap())
	}
	queries := make([]string, 5)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", 1900+i)
	}
	for i := 0; i < 4; i++ {
		p.Add(sqlparse.MustParse(s, queries[i]), int64(i+1))
	}
	// Touch entries 1..3 via TopK so entry 0 becomes the LRU victim.
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1990")
	p.TopK(probe, 3) // similarity ties broken by ID: selects IDs 0,1,2... touch all but one
	// Deterministically stamp everything, then stamp a strict subset last.
	p.Matching(probe)
	p.TopK(probe, 3)

	vBefore := p.Version()
	if !p.Add(sqlparse.MustParse(s, queries[4]), 99) {
		t.Fatal("insert into full pool should succeed")
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", p.Len())
	}
	if v := p.Version(); v < vBefore+2 {
		t.Errorf("eviction+insert should bump Version at least twice: %d -> %d", vBefore, v)
	}
	st := p.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	// The victim is the one entry the last TopK(3) did not touch — and it
	// must no longer be Contains-able.
	evicted := 0
	for _, sql := range queries {
		if !p.Contains(sqlparse.MustParse(s, sql)) {
			evicted++
		}
	}
	if evicted != 1 {
		t.Errorf("exactly one original query should be gone, found %d missing", evicted)
	}
}

func TestWithCapUnboundedByDefault(t *testing.T) {
	p := New()
	for i := 0; i < 100; i++ {
		p.Add(sqlparse.MustParse(s, fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d", i)), 1)
	}
	if p.Len() != 100 || p.Stats().Evictions != 0 {
		t.Errorf("unbounded pool should never evict: %+v", p.Stats())
	}
}

func TestEvictionPreservesSignatureAlignment(t *testing.T) {
	p := New(WithCap(3))
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1"), 10)
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1990"), 20)
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1991"), 30)
	// Evict (the oldest) and insert a new production_year query.
	p.Add(sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1992"), 40)

	// After the splice, TopK must still rank by the signature that belongs
	// to each surviving entry.
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1989")
	got := p.TopK(probe, 2)
	if len(got) != 2 {
		t.Fatalf("TopK returned %d entries", len(got))
	}
	for _, e := range got {
		if len(e.Q.Preds) == 0 || e.Q.Preds[0].Col.Column != "production_year" {
			t.Errorf("misaligned selection after eviction: got %s", e.Q.SQL())
		}
	}
}

// TestTopKHeapSelectsTrueTopK pins the selection heap directly: for every k
// over a score sequence chosen so mid-ranked candidates arrive after the
// heap is full, the kept set must be exactly the k best by (score, ID).
func TestTopKHeapSelectsTrueTopK(t *testing.T) {
	scores := []float64{10, 5, 7, 1, 9, 3, 8, 2, 6, 4}
	for k := 1; k <= len(scores); k++ {
		h := newTopKHeap(k)
		for i, s := range scores {
			h.offer(scoredRef{score: s, idx: i, id: int64(i)})
		}
		got := h.sorted()
		if len(got) != k {
			t.Fatalf("k=%d: kept %d", k, len(got))
		}
		for i, r := range got {
			want := float64(10 - i) // scores are a permutation of 1..10
			if r.score != want {
				t.Errorf("k=%d slot %d: score %v, want %v (heap dropped a better candidate)",
					k, i, r.score, want)
			}
		}
	}
}
