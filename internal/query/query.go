// Package query models the conjunctive SELECT * queries of the paper:
// a set of tables T (FROM clause), a set of equi-join clauses J, and a set of
// column predicates P with operators <, = and > (§3.2.1). It provides
// canonical keys (pairs of queries are only comparable when their SELECT and
// FROM clauses are identical, §2), the intersection query Q1∩Q2 used by the
// Crd2Cnt transformation (§4.1.1), and a SQL renderer.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"crn/internal/schema"
)

// Join is an equi-join clause (col1 = col2) from the WHERE clause.
type Join struct {
	Left, Right schema.ColumnRef
}

// Canonical returns the join with its sides in lexicographic order, so that
// equal joins compare equal regardless of how they were written.
func (j Join) Canonical() Join {
	if j.Left.String() > j.Right.String() {
		return Join{Left: j.Right, Right: j.Left}
	}
	return j
}

// String renders the clause as SQL.
func (j Join) String() string { return j.Left.String() + " = " + j.Right.String() }

// Predicate is a column predicate (col op val) from the WHERE clause.
type Predicate struct {
	Col schema.ColumnRef
	Op  string // schema.OpLT, schema.OpEQ or schema.OpGT
	Val int64
}

// String renders the predicate as SQL.
func (p Predicate) String() string {
	return p.Col.String() + " " + p.Op + " " + strconv.FormatInt(p.Val, 10)
}

// Matches reports whether value v satisfies the predicate.
func (p Predicate) Matches(v int64) bool {
	switch p.Op {
	case schema.OpLT:
		return v < p.Val
	case schema.OpEQ:
		return v == p.Val
	case schema.OpGT:
		return v > p.Val
	}
	return false
}

// Query is a conjunctive SELECT * query. The zero value is an empty query;
// construct real queries with New to get validation and canonical ordering.
type Query struct {
	Tables []string    // sorted table names (the FROM clause)
	Joins  []Join      // canonicalized, sorted join clauses
	Preds  []Predicate // sorted column predicates

	// key is the canonical SQL rendering, precomputed by New so the serving
	// hot path (cache lookups, pool dedup) never re-renders it. Literal-built
	// values leave it empty and fall back to rendering on demand.
	key string

	// sig is the predicate signature, precomputed like key so the pool's
	// candidate selection never recomputes it per probe. Immutable once set;
	// Clone shares it. Literal-built values leave it nil and Signature()
	// computes on demand.
	sig *Signature
}

// New assembles a Query, canonicalizing table, join and predicate order and
// validating every reference against the schema. Join clauses must be edges
// of the schema join graph and predicates must name non-key columns of
// tables present in the FROM clause.
func New(s *schema.Schema, tables []string, joins []Join, preds []Predicate) (Query, error) {
	q := Query{
		Tables: append([]string(nil), tables...),
		Joins:  make([]Join, len(joins)),
		Preds:  append([]Predicate(nil), preds...),
	}
	sort.Strings(q.Tables)
	for i := 1; i < len(q.Tables); i++ {
		if q.Tables[i] == q.Tables[i-1] {
			return Query{}, fmt.Errorf("query: duplicate table %q", q.Tables[i])
		}
	}
	inFrom := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		if _, ok := s.Table(t); !ok {
			return Query{}, fmt.Errorf("query: unknown table %q", t)
		}
		inFrom[t] = true
	}
	for i, j := range joins {
		cj := j.Canonical()
		if _, ok := s.JoinID(cj.Left, cj.Right); !ok {
			return Query{}, fmt.Errorf("query: %v is not a join edge of the schema", cj)
		}
		if !inFrom[cj.Left.Table] || !inFrom[cj.Right.Table] {
			return Query{}, fmt.Errorf("query: join %v references table outside FROM clause", cj)
		}
		q.Joins[i] = cj
	}
	sort.Slice(q.Joins, func(a, b int) bool { return joinKey(q.Joins[a]) < joinKey(q.Joins[b]) })
	for i := 1; i < len(q.Joins); i++ {
		if q.Joins[i] == q.Joins[i-1] {
			return Query{}, fmt.Errorf("query: duplicate join %v", q.Joins[i])
		}
	}
	for _, p := range q.Preds {
		if !s.HasColumn(p.Col) {
			return Query{}, fmt.Errorf("query: unknown column %v", p.Col)
		}
		if !inFrom[p.Col.Table] {
			return Query{}, fmt.Errorf("query: predicate on %v references table outside FROM clause", p.Col)
		}
		if _, ok := s.OperatorID(p.Op); !ok {
			return Query{}, fmt.Errorf("query: unsupported operator %q", p.Op)
		}
	}
	sortPreds(q.Preds)
	// P is a set (§3.2.1): conjunction is idempotent, so exact duplicates
	// collapse (they would otherwise double-weight the vector in the mean
	// pooling of the set encoders).
	q.Preds = dedupPreds(q.Preds)
	q.key = q.render()
	q.cacheSignature()
	return q, nil
}

// cacheSignature precomputes and pins the query's predicate signature.
func (q *Query) cacheSignature() {
	sig := computeSignature(*q)
	q.sig = &sig
}

// dedupPreds removes adjacent duplicates from a sorted predicate slice.
func dedupPreds(preds []Predicate) []Predicate {
	if len(preds) < 2 {
		return preds
	}
	out := preds[:1]
	for _, p := range preds[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

func sortPreds(preds []Predicate) {
	sort.Slice(preds, func(a, b int) bool {
		pa, pb := preds[a], preds[b]
		if pa.Col.String() != pb.Col.String() {
			return pa.Col.String() < pb.Col.String()
		}
		if pa.Op != pb.Op {
			return pa.Op < pb.Op
		}
		return pa.Val < pb.Val
	})
}

func joinKey(j Join) string { return schema.EdgeKey(j.Left, j.Right) }

// NumJoins returns the number of join clauses (the paper counts a query's
// "number of joins" this way).
func (q Query) NumJoins() int { return len(q.Joins) }

// FROMKey returns the canonical key of the FROM clause. Two queries are
// containment-comparable exactly when their FROMKeys are equal (§2). It also
// serves as the hash key of the queries pool (§5.2).
func (q Query) FROMKey() string { return strings.Join(q.Tables, ",") }

// Key returns a canonical string uniquely identifying the whole query; used
// for deduplication and label caching.
func (q Query) Key() string { return q.SQL() }

// SQL returns the query as a SQL string in canonical order (precomputed for
// queries built by New or Intersect).
func (q Query) SQL() string {
	if q.key != "" {
		return q.key
	}
	return q.render()
}

// render builds the canonical SQL string.
func (q Query) render() string {
	var b strings.Builder
	b.WriteString("SELECT * FROM ")
	b.WriteString(strings.Join(q.Tables, ", "))
	var where []string
	for _, j := range q.Joins {
		where = append(where, j.String())
	}
	for _, p := range q.Preds {
		where = append(where, p.String())
	}
	if len(where) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(where, " AND "))
	} else {
		b.WriteString(" WHERE TRUE")
	}
	return b.String()
}

// String implements fmt.Stringer.
func (q Query) String() string { return q.SQL() }

// Comparable reports whether the two queries have identical SELECT and FROM
// clauses, the precondition for a containment rate to be defined (§2).
func (q Query) Comparable(other Query) bool { return q.FROMKey() == other.FROMKey() }

// Intersect returns the intersection query Q1∩Q2 of the Crd2Cnt
// transformation (§4.1.1): identical SELECT and FROM clauses, WHERE clause
// the conjunction of both queries' WHERE clauses. It fails if the FROM
// clauses differ.
func (q Query) Intersect(other Query) (Query, error) {
	if !q.Comparable(other) {
		return Query{}, fmt.Errorf("query: intersection requires identical FROM clauses (%q vs %q)", q.FROMKey(), other.FROMKey())
	}
	out := Query{Tables: append([]string(nil), q.Tables...)}
	seenJ := make(map[Join]bool)
	for _, j := range append(append([]Join(nil), q.Joins...), other.Joins...) {
		c := j.Canonical()
		if !seenJ[c] {
			seenJ[c] = true
			out.Joins = append(out.Joins, c)
		}
	}
	sort.Slice(out.Joins, func(a, b int) bool { return joinKey(out.Joins[a]) < joinKey(out.Joins[b]) })
	seenP := make(map[Predicate]bool)
	for _, p := range append(append([]Predicate(nil), q.Preds...), other.Preds...) {
		if !seenP[p] {
			seenP[p] = true
			out.Preds = append(out.Preds, p)
		}
	}
	sortPreds(out.Preds)
	out.key = out.render()
	out.cacheSignature()
	return out, nil
}

// PredsOn returns the predicates restricted to one table.
func (q Query) PredsOn(table string) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if p.Col.Table == table {
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a deep copy of the query; mutating the copy's slices leaves
// the original untouched.
func (q Query) Clone() Query {
	return Query{
		Tables: append([]string(nil), q.Tables...),
		Joins:  append([]Join(nil), q.Joins...),
		Preds:  append([]Predicate(nil), q.Preds...),
		key:    q.key,
		sig:    q.sig,
	}
}

// Equal reports structural equality of two canonical queries.
func (q Query) Equal(other Query) bool { return q.Key() == other.Key() }

// WithPredicate returns a copy of the query with one extra predicate,
// keeping canonical predicate order.
func (q Query) WithPredicate(p Predicate) Query {
	out := q.Clone()
	out.Preds = append(out.Preds, p)
	sortPreds(out.Preds)
	out.key = out.render()
	out.cacheSignature()
	return out
}

// Component is one connected piece of a query's join graph. Queries whose
// FROM clause is join-disconnected evaluate to the cartesian product of
// their components.
type Component struct {
	Tables []string
	Joins  []Join
}

// Components partitions the query's tables into connected components under
// its join clauses, in deterministic (first-table) order.
func (q Query) Components() []Component {
	parent := make(map[string]string, len(q.Tables))
	for _, t := range q.Tables {
		parent[t] = t
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, j := range q.Joins {
		a, b := find(j.Left.Table), find(j.Right.Table)
		if a != b {
			parent[a] = b
		}
	}
	byRoot := make(map[string]*Component)
	var order []string
	for _, t := range q.Tables {
		r := find(t)
		if byRoot[r] == nil {
			byRoot[r] = &Component{}
			order = append(order, r)
		}
		byRoot[r].Tables = append(byRoot[r].Tables, t)
	}
	for _, j := range q.Joins {
		r := find(j.Left.Table)
		byRoot[r].Joins = append(byRoot[r].Joins, j)
	}
	out := make([]Component, 0, len(order))
	for _, r := range order {
		out = append(out, *byRoot[r])
	}
	return out
}
