package query

import (
	"strings"
	"testing"

	"crn/internal/schema"
)

var s = schema.IMDB()

func ref(t, c string) schema.ColumnRef { return schema.ColumnRef{Table: t, Column: c} }

func mustQuery(t *testing.T, tables []string, joins []Join, preds []Predicate) Query {
	t.Helper()
	q, err := New(s, tables, joins, preds)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

func titleCast(t *testing.T, preds ...Predicate) Query {
	return mustQuery(t,
		[]string{schema.Title, schema.CastInfo},
		[]Join{{Left: ref("title", "id"), Right: ref("cast_info", "movie_id")}},
		preds,
	)
}

func TestNewCanonicalizes(t *testing.T) {
	q := mustQuery(t,
		[]string{schema.CastInfo, schema.Title},
		[]Join{{Left: ref("cast_info", "movie_id"), Right: ref("title", "id")}},
		[]Predicate{
			{Col: ref("title", "production_year"), Op: schema.OpGT, Val: 2000},
			{Col: ref("cast_info", "role_id"), Op: schema.OpEQ, Val: 2},
		},
	)
	if q.FROMKey() != "cast_info,title" {
		t.Errorf("FROMKey = %q", q.FROMKey())
	}
	// Joins canonicalized to lexicographic side order.
	if q.Joins[0].Left.Table != "cast_info" {
		t.Errorf("join not canonicalized: %v", q.Joins[0])
	}
	// Predicates sorted by column.
	if q.Preds[0].Col.Table != "cast_info" {
		t.Errorf("predicates not sorted: %v", q.Preds)
	}
	if q.NumJoins() != 1 {
		t.Errorf("NumJoins = %d", q.NumJoins())
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		tables []string
		joins  []Join
		preds  []Predicate
	}{
		{"unknown table", []string{"nope"}, nil, nil},
		{"duplicate table", []string{"title", "title"}, nil, nil},
		{"non-edge join", []string{"title", "cast_info"},
			[]Join{{Left: ref("title", "kind_id"), Right: ref("cast_info", "role_id")}}, nil},
		{"join outside FROM", []string{"title", "cast_info"},
			[]Join{{Left: ref("title", "id"), Right: ref("movie_keyword", "movie_id")}}, nil},
		{"duplicate join", []string{"title", "cast_info"},
			[]Join{
				{Left: ref("title", "id"), Right: ref("cast_info", "movie_id")},
				{Left: ref("cast_info", "movie_id"), Right: ref("title", "id")},
			}, nil},
		{"unknown predicate column", []string{"title"}, nil,
			[]Predicate{{Col: ref("title", "zzz"), Op: schema.OpEQ, Val: 1}}},
		{"predicate outside FROM", []string{"title"}, nil,
			[]Predicate{{Col: ref("cast_info", "role_id"), Op: schema.OpEQ, Val: 1}}},
		{"bad operator", []string{"title"}, nil,
			[]Predicate{{Col: ref("title", "kind_id"), Op: "!=", Val: 1}}},
	}
	for _, c := range cases {
		if _, err := New(s, c.tables, c.joins, c.preds); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewDeduplicatesPredicates(t *testing.T) {
	p := Predicate{Col: ref("title", "kind_id"), Op: schema.OpEQ, Val: 2}
	q := mustQuery(t, []string{schema.Title}, nil, []Predicate{p, p, p})
	if len(q.Preds) != 1 {
		t.Errorf("duplicate predicates not collapsed: %v", q.Preds)
	}
	// Distinct predicates survive.
	p2 := Predicate{Col: ref("title", "kind_id"), Op: schema.OpEQ, Val: 3}
	q = mustQuery(t, []string{schema.Title}, nil, []Predicate{p, p2, p})
	if len(q.Preds) != 2 {
		t.Errorf("distinct predicates lost: %v", q.Preds)
	}
}

func TestSQLRendering(t *testing.T) {
	q := titleCast(t, Predicate{Col: ref("title", "production_year"), Op: schema.OpGT, Val: 1990})
	sql := q.SQL()
	for _, want := range []string{"SELECT * FROM", "cast_info, title", "cast_info.movie_id = title.id", "title.production_year > 1990"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
	empty := mustQuery(t, []string{schema.Title}, nil, nil)
	if !strings.HasSuffix(empty.SQL(), "WHERE TRUE") {
		t.Errorf("empty WHERE should render TRUE: %q", empty.SQL())
	}
}

func TestPredicateMatches(t *testing.T) {
	p := Predicate{Col: ref("title", "kind_id"), Op: schema.OpLT, Val: 5}
	if !p.Matches(4) || p.Matches(5) {
		t.Error("OpLT semantics broken")
	}
	p.Op = schema.OpEQ
	if !p.Matches(5) || p.Matches(4) {
		t.Error("OpEQ semantics broken")
	}
	p.Op = schema.OpGT
	if !p.Matches(6) || p.Matches(5) {
		t.Error("OpGT semantics broken")
	}
	p.Op = "bogus"
	if p.Matches(5) {
		t.Error("unknown op should match nothing")
	}
}

func TestIntersect(t *testing.T) {
	q1 := titleCast(t, Predicate{Col: ref("title", "production_year"), Op: schema.OpGT, Val: 1990})
	q2 := titleCast(t,
		Predicate{Col: ref("title", "production_year"), Op: schema.OpGT, Val: 1990},
		Predicate{Col: ref("cast_info", "role_id"), Op: schema.OpEQ, Val: 1},
	)
	qi, err := q1.Intersect(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(qi.Preds) != 2 {
		t.Errorf("intersection should dedup shared predicate: %v", qi.Preds)
	}
	if len(qi.Joins) != 1 {
		t.Errorf("intersection should dedup joins: %v", qi.Joins)
	}
	if qi.FROMKey() != q1.FROMKey() {
		t.Errorf("intersection FROM changed: %q", qi.FROMKey())
	}
	// Intersection is symmetric.
	qj, err := q2.Intersect(q1)
	if err != nil {
		t.Fatal(err)
	}
	if !qi.Equal(qj) {
		t.Errorf("intersection not symmetric: %q vs %q", qi.Key(), qj.Key())
	}
	// Self-intersection is identity.
	qs, err := q1.Intersect(q1)
	if err != nil {
		t.Fatal(err)
	}
	if !qs.Equal(q1) {
		t.Errorf("self-intersection changed query: %q", qs.Key())
	}
}

func TestIntersectRequiresSameFROM(t *testing.T) {
	q1 := mustQuery(t, []string{schema.Title}, nil, nil)
	q2 := mustQuery(t, []string{schema.CastInfo}, nil, nil)
	if _, err := q1.Intersect(q2); err == nil {
		t.Error("expected error for different FROM clauses")
	}
	if q1.Comparable(q2) {
		t.Error("queries with different FROM should not be comparable")
	}
}

func TestPredsOn(t *testing.T) {
	q := titleCast(t,
		Predicate{Col: ref("title", "production_year"), Op: schema.OpGT, Val: 1990},
		Predicate{Col: ref("cast_info", "role_id"), Op: schema.OpEQ, Val: 1},
		Predicate{Col: ref("title", "kind_id"), Op: schema.OpEQ, Val: 3},
	)
	if got := len(q.PredsOn("title")); got != 2 {
		t.Errorf("PredsOn(title) = %d, want 2", got)
	}
	if got := len(q.PredsOn("movie_keyword")); got != 0 {
		t.Errorf("PredsOn(movie_keyword) = %d, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := titleCast(t, Predicate{Col: ref("title", "kind_id"), Op: schema.OpEQ, Val: 3})
	c := q.Clone()
	c.Preds[0].Val = 99
	c.Tables[0] = "zzz"
	if q.Preds[0].Val != 3 || q.Tables[0] == "zzz" {
		t.Error("Clone is not deep")
	}
}

func TestWithPredicateKeepsOrder(t *testing.T) {
	q := mustQuery(t, []string{schema.Title}, nil, nil)
	q2 := q.WithPredicate(Predicate{Col: ref("title", "production_year"), Op: schema.OpGT, Val: 2000})
	q3 := q2.WithPredicate(Predicate{Col: ref("title", "kind_id"), Op: schema.OpEQ, Val: 1})
	if len(q.Preds) != 0 || len(q2.Preds) != 1 || len(q3.Preds) != 2 {
		t.Fatal("WithPredicate should be non-destructive")
	}
	if q3.Preds[0].Col.Column != "kind_id" {
		t.Errorf("predicates not re-sorted: %v", q3.Preds)
	}
}

func TestKeyStableUnderConstructionOrder(t *testing.T) {
	a := mustQuery(t,
		[]string{schema.Title, schema.CastInfo, schema.MovieKeyword},
		[]Join{
			{Left: ref("title", "id"), Right: ref("movie_keyword", "movie_id")},
			{Left: ref("cast_info", "movie_id"), Right: ref("title", "id")},
		},
		[]Predicate{
			{Col: ref("movie_keyword", "keyword_id"), Op: schema.OpEQ, Val: 7},
			{Col: ref("cast_info", "nr_order"), Op: schema.OpLT, Val: 4},
		},
	)
	b := mustQuery(t,
		[]string{schema.MovieKeyword, schema.CastInfo, schema.Title},
		[]Join{
			{Left: ref("title", "id"), Right: ref("cast_info", "movie_id")},
			{Left: ref("movie_keyword", "movie_id"), Right: ref("title", "id")},
		},
		[]Predicate{
			{Col: ref("cast_info", "nr_order"), Op: schema.OpLT, Val: 4},
			{Col: ref("movie_keyword", "keyword_id"), Op: schema.OpEQ, Val: 7},
		},
	)
	if a.Key() != b.Key() {
		t.Errorf("keys differ:\n%s\n%s", a.Key(), b.Key())
	}
	if !a.Equal(b) {
		t.Error("Equal should hold for canonically identical queries")
	}
}
