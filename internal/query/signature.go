package query

import (
	"encoding/binary"
	"math/bits"

	"crn/internal/schema"
)

// Signature is a compact summary of one query's predicate structure,
// computed once when the query is constructed (New caches it alongside the
// canonical key) and scanned — instead of the query itself — when a probe
// asks for its most containment-comparable candidates (the queries pool's
// TopK). It captures, schema-free (column and join identities are hashed
// into 64-bit masks), the three things that decide whether the Cnt2Crd
// transformation extracts signal from an (old, new) pair:
//
//   - which columns each side constrains (column-set bitmask): a column the
//     old query constrains but the new one does not drives the y_rate
//     Qnew ⊂% Qold toward zero and into the ε guard;
//   - how each column is constrained (per-operator-class masks and the
//     conjunction's per-column value interval): overlapping ranges keep
//     both rates informative, disjoint ranges zero them out;
//   - which join edges each side applies (join bitmask): a differing join
//     set changes the result shape the same way extra predicates do.
//
// Hash collisions (two columns sharing a mask bit) only blur the ranking —
// selection stays a strict subset of the FROM-clause candidates, so they
// can never make an incomparable pair comparable.
//
// Signature lived in internal/pool through PR 7; it moved here so a Query
// can carry its signature precomputed (the pool package aliases the name).
type Signature struct {
	Cols  uint64             // mask of predicate columns
	Joins uint64             // mask of join edges
	Ops   [NumOpClass]uint64 // per-operator-class column masks (<, =, >)

	// Ranges holds the conjunction's value interval per predicate column,
	// sorted by column hash for merge-joining two signatures. Shared, not
	// copied, when a cached signature is returned: callers must treat it as
	// immutable.
	Ranges []ColRange
}

// NumOpClass is the number of predicate operator classes (<, =, >).
const NumOpClass = 3

// ColRange is the value interval a conjunction of predicates pins one
// column to. Unbounded sides are marked rather than saturated so interval
// similarity can treat "no constraint" distinctly from "huge range".
type ColRange struct {
	Col      uint64 // column hash (identity for merging, bit source for masks)
	Lo, Hi   int64
	HasLo    bool
	HasHi    bool
	Conflict bool // contradictory conjunction (e.g. =1 AND =2): empty range
}

// opClass maps a predicate operator to its class ordinal.
func opClass(op string) int {
	switch op {
	case schema.OpLT:
		return 0
	case schema.OpEQ:
		return 1
	default: // schema.OpGT
		return 2
	}
}

// hashString is FNV-1a, the same mixing the rep cache uses for sharding;
// signatures only need stable, well-spread identities.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Signature returns the query's predicate signature: precomputed for
// queries built by New, Intersect or WithPredicate (the serving hot path
// never recomputes it — one pointer read per TopK probe), computed on
// demand for literal-built values.
func (q Query) Signature() Signature {
	if q.sig != nil {
		return *q.sig
	}
	return computeSignature(q)
}

// computeSignature summarizes q. It is pure and deterministic: equal
// canonical queries yield equal signatures.
func computeSignature(q Query) Signature {
	var sig Signature
	for _, j := range q.Joins {
		sig.Joins |= 1 << (hashString(schema.EdgeKey(j.Left, j.Right)) & 63)
	}
	for _, p := range q.Preds {
		col := hashString(p.Col.String())
		bit := uint64(1) << (col & 63)
		sig.Cols |= bit
		sig.Ops[opClass(p.Op)] |= bit
		sig.Ranges = tightenRange(sig.Ranges, col, p)
	}
	// Canonical predicate order sorts by column STRING; the merge-join in
	// Similarity walks intervals by column HASH.
	sortRanges(sig.Ranges)
	return sig
}

// tightenRange intersects predicate p into the interval of its column,
// appending a fresh interval for a first-seen column. Predicates arrive in
// canonical order (sorted by column string), so ranges stay grouped by
// column; the final slice is re-sorted by hash before use.
func tightenRange(ranges []ColRange, col uint64, p Predicate) []ColRange {
	var r *ColRange
	for i := range ranges {
		if ranges[i].Col == col {
			r = &ranges[i]
			break
		}
	}
	if r == nil {
		ranges = append(ranges, ColRange{Col: col})
		r = &ranges[len(ranges)-1]
	}
	switch p.Op {
	case schema.OpLT: // col < v  =>  hi = min(hi, v-1)
		if !r.HasHi || p.Val-1 < r.Hi {
			r.Hi, r.HasHi = p.Val-1, true
		}
	case schema.OpGT: // col > v  =>  lo = max(lo, v+1)
		if !r.HasLo || p.Val+1 > r.Lo {
			r.Lo, r.HasLo = p.Val+1, true
		}
	case schema.OpEQ:
		if !r.HasLo || p.Val > r.Lo {
			r.Lo, r.HasLo = p.Val, true
		}
		if !r.HasHi || p.Val < r.Hi {
			r.Hi, r.HasHi = p.Val, true
		}
	}
	if r.HasLo && r.HasHi && r.Lo > r.Hi {
		r.Conflict = true
	}
	return ranges
}

// sortRanges orders a signature's intervals by column hash (insertion sort:
// queries carry a handful of predicates).
func sortRanges(ranges []ColRange) {
	for i := 1; i < len(ranges); i++ {
		for j := i; j > 0 && ranges[j-1].Col > ranges[j].Col; j-- {
			ranges[j-1], ranges[j] = ranges[j], ranges[j-1]
		}
	}
}

// Similarity scoring weights. The ranking favors old queries whose
// constraint set is dominated by the probe's: a shared column with an
// overlapping range keeps both containment rates informative; a column only
// the OLD query constrains shrinks y_rate = Qnew ⊂% Qold toward the ε guard
// (the candidate contributes nothing), so it is penalized hardest; a column
// only the NEW query constrains merely tightens x_rate and often marks a
// containing anchor (y_rate ≈ 1), so its penalty is mild. Values are
// heuristic; the accuracy gate in internal/experiments pins the ranking's
// effect on median q-error.
const (
	wSharedCol   = 2.0
	wExtraOldCol = 1.5
	wExtraNewCol = 0.25
	wOpClass     = 0.25
	wRange       = 1.0
	wSharedJoin  = 1.0
	wJoinDiff    = 1.0
)

// Similarity scores how containment-comparable an old query's signature is
// to the probe's, higher is better. Deterministic and symmetric in nothing:
// the probe is the NEW query, old is the pooled one.
func (probe Signature) Similarity(old Signature) float64 {
	score := probe.MaskSimilarity(old)
	// Merge-join the per-column intervals of columns both sides constrain.
	i, j := 0, 0
	for i < len(probe.Ranges) && j < len(old.Ranges) {
		a, b := &probe.Ranges[i], &old.Ranges[j]
		switch {
		case a.Col < b.Col:
			i++
		case a.Col > b.Col:
			j++
		default:
			score += wRange * rangeAffinity(*a, *b)
			i++
			j++
		}
	}
	return score
}

// MaskSimilarity is the mask-and-join part of Similarity — everything that
// depends only on the column, operator-class and join bitmasks, not on the
// per-column interval values. It performs exactly the floating-point
// operations Similarity performs before its range merge-join, in the same
// order, so Similarity(probe, old) continues from this value bit for bit;
// the pool's signature-class index relies on that to score a whole class of
// range-value-variant signatures with one call.
func (probe Signature) MaskSimilarity(old Signature) float64 {
	shared := probe.Cols & old.Cols
	score := wSharedCol*float64(popcount(shared)) -
		wExtraOldCol*float64(popcount(old.Cols&^probe.Cols)) -
		wExtraNewCol*float64(popcount(probe.Cols&^old.Cols))
	for c := 0; c < NumOpClass; c++ {
		score += wOpClass * float64(popcount(probe.Ops[c]&old.Ops[c]&shared))
	}
	score += wSharedJoin*float64(popcount(probe.Joins&old.Joins)) -
		wJoinDiff*float64(popcount(probe.Joins^old.Joins))
	return score
}

// SimilarityBound bounds Similarity over a signature CLASS: given a pattern
// signature (masks plus range shapes; the range VALUES are ignored), it
// returns an upper bound on Similarity(probe, m) over every signature m
// sharing the pattern's masks and per-column boundedness/conflict shape,
// and reports whether the score is flat — the same, bit for bit, for every
// such m (no matched column's affinity depends on the member's bound
// values). The bound accumulates in Similarity's exact operation order with
// pointwise-greater-or-equal addends, so floating-point monotonicity makes
// it a true upper bound of every member's computed score.
func (probe Signature) SimilarityBound(pattern Signature) (ub float64, flat bool) {
	ub = probe.MaskSimilarity(pattern)
	flat = true
	i, j := 0, 0
	for i < len(probe.Ranges) && j < len(pattern.Ranges) {
		a, b := &probe.Ranges[i], &pattern.Ranges[j]
		switch {
		case a.Col < b.Col:
			i++
		case a.Col > b.Col:
			j++
		default:
			maxAff, constant := rangeAffinityBound(*a, *b)
			ub += wRange * maxAff
			flat = flat && constant
			i++
			j++
		}
	}
	return ub, flat
}

// rangeAffinityBound is the per-column case analysis behind SimilarityBound:
// the maximum rangeAffinity(a, b') over all b' sharing b's column and
// boundedness/conflict flags, and whether the affinity is the same constant
// for every such b'. The cases mirror rangeAffinity exactly:
//
//   - either side conflicted: always -1;
//   - both sides half-bounded on the SAME side (lo,lo or hi,hi): never
//     provably disjoint, never measurable — always 0.5;
//   - both sides fully bounded: Jaccard in [0,1] or disjoint, max 1;
//   - any other mix (opposing half-bounds, or half against full): disjoint
//     or the flat half-bounded overlap score, max 0.5.
func rangeAffinityBound(a, b ColRange) (maxAff float64, constant bool) {
	if a.Conflict || b.Conflict {
		return -1, true
	}
	if (!a.HasLo && !a.HasHi) || (!b.HasLo && !b.HasHi) {
		// Defensive: computed signatures never carry a fully unbounded range.
		return 0, true
	}
	aBoth := a.HasLo && a.HasHi
	bBoth := b.HasLo && b.HasHi
	switch {
	case !aBoth && !bBoth && a.HasLo == b.HasLo:
		return 0.5, true
	case aBoth && bBoth:
		return 1, false
	default:
		return 0.5, false
	}
}

// rangeAffinity returns the interval similarity of two per-column ranges in
// [-1, 1]: 1 for identical bounded ranges, a Jaccard-style fraction for
// partial overlap, 0 when one side is effectively unbounded, and -1 for
// provably disjoint ranges (the pair's rates are pinned at 0, the candidate
// is dead weight).
func rangeAffinity(a, b ColRange) float64 {
	if a.Conflict || b.Conflict {
		return -1
	}
	// Disjointness is decidable whenever one side's lower bound exceeds the
	// other's upper bound.
	if (a.HasLo && b.HasHi && a.Lo > b.Hi) || (b.HasLo && a.HasHi && b.Lo > a.Hi) {
		return -1
	}
	if !a.HasLo && !a.HasHi || !b.HasLo && !b.HasHi {
		return 0
	}
	// Jaccard on bounded intervals below; a half-bounded pair that overlaps
	// falls through to a flat weak-signal score (its overlap has no
	// measurable fraction).
	aw, awOK := width(a)
	bw, bwOK := width(b)
	if awOK && bwOK {
		lo := a.Lo
		if b.Lo > lo {
			lo = b.Lo
		}
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		inter := float64(hi-lo) + 1
		if inter < 0 {
			inter = 0
		}
		union := aw + bw - inter
		if union <= 0 {
			return 1
		}
		return inter / union
	}
	// One side half-bounded: overlapping but not measurable — weak signal.
	return 0.5
}

// width returns the element count of a bounded interval.
func width(r ColRange) (float64, bool) {
	if !r.HasLo || !r.HasHi {
		return 0, false
	}
	return float64(r.Hi-r.Lo) + 1, true
}

// popcount narrows bits.OnesCount64 (a compiler intrinsic — a single POPCNT
// on amd64) at the scoring loop's call sites.
func popcount(x uint64) int { return bits.OnesCount64(x) }

// PatternKey returns a value-free binary encoding of the signature: the
// three mask sets plus, per range, the column hash and its boundedness and
// conflict flags — but not the bound values. Two signatures share a
// PatternKey exactly when every probe's Similarity walk hits the same case
// structure against both, differing only where rangeAffinity reads bound
// values; the pool's inverted index partitions each FROM clause's entries
// into such classes.
func (s Signature) PatternKey() string {
	buf := make([]byte, 0, 5*8+len(s.Ranges)*9)
	buf = binary.BigEndian.AppendUint64(buf, s.Cols)
	buf = binary.BigEndian.AppendUint64(buf, s.Joins)
	for _, m := range s.Ops {
		buf = binary.BigEndian.AppendUint64(buf, m)
	}
	for _, r := range s.Ranges {
		buf = binary.BigEndian.AppendUint64(buf, r.Col)
		var f byte
		if r.HasLo {
			f |= 1
		}
		if r.HasHi {
			f |= 2
		}
		if r.Conflict {
			f |= 4
		}
		buf = append(buf, f)
	}
	return string(buf)
}

// ValueKey returns a binary encoding of the signature's range bound values
// (unset sides encode as zero — the flags distinguishing them live in
// PatternKey). Within one PatternKey class, signatures are fully identical
// exactly when their ValueKeys are equal; the pool's index groups class
// members into such buckets so each distinct signature is scored once per
// probe.
func (s Signature) ValueKey() string {
	buf := make([]byte, 0, len(s.Ranges)*16)
	for _, r := range s.Ranges {
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Lo))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Hi))
	}
	return string(buf)
}
