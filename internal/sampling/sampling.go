// Package sampling implements the two sampling-based cardinality estimators
// the paper positions MSCN against (§4.1, §8): plain Random Sampling (RS)
// over per-table uniform samples, and Index-Based Join Sampling (IBJS,
// Leis et al., CIDR 2017), which walks foreign-key indexes from a sampled
// root table and therefore does not suffer RS's empty-join-of-samples
// problem.
//
// Both estimators are unbiased for single-table predicates. For joins, RS
// joins the independent per-table samples and scales by the inverse
// sampling fractions — collapsing to zero whenever no sampled FK pairs
// match (the classic failure that motivated IBJS). IBJS samples only the
// root table and counts matching index entries exactly, giving a
// Horvitz-Thompson estimate whose variance comes solely from root sampling.
package sampling

import (
	"fmt"
	"math/rand"

	"crn/internal/contain"
	"crn/internal/db"
	"crn/internal/query"
)

// RS is the random-sampling estimator: one uniform sample per table.
type RS struct {
	d       *db.Database
	k       int
	samples map[string][]int32
}

// NewRS draws k uniform sample rows per table (all rows when a table has
// fewer than k).
func NewRS(d *db.Database, k int, seed int64) (*RS, error) {
	if !d.Frozen() {
		return nil, fmt.Errorf("sampling: database must be frozen")
	}
	if k <= 0 {
		return nil, fmt.Errorf("sampling: sample size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	r := &RS{d: d, k: k, samples: make(map[string][]int32)}
	for _, td := range d.Schema.Tables {
		n := d.NumRows(td.Name)
		size := k
		if size > n {
			size = n
		}
		perm := rng.Perm(n)
		rows := make([]int32, size)
		for i := 0; i < size; i++ {
			rows[i] = int32(perm[i])
		}
		r.samples[td.Name] = rows
	}
	return r, nil
}

// EstimateCard implements contain.CardEstimator by joining the per-table
// samples and scaling by the inverse sampling fractions.
func (r *RS) EstimateCard(q query.Query) (float64, error) {
	if len(q.Tables) == 0 {
		return 0, fmt.Errorf("sampling: query has no tables")
	}
	total := 1.0
	for _, comp := range q.Components() {
		if len(comp.Joins) != len(comp.Tables)-1 {
			return 0, fmt.Errorf("sampling: cyclic join graph not supported")
		}
		c, err := r.componentEstimate(q, comp)
		if err != nil {
			return 0, err
		}
		total *= c
		if total == 0 {
			return 0, nil
		}
	}
	return total, nil
}

// componentEstimate joins the samples of one connected component exactly
// (bottom-up weights over sampled rows only) and scales the count.
func (r *RS) componentEstimate(q query.Query, c query.Component) (float64, error) {
	preds := make(map[string][]query.Predicate)
	scale := 1.0
	for _, t := range c.Tables {
		n := r.d.NumRows(t)
		k := len(r.samples[t])
		if k == 0 {
			return 0, nil
		}
		scale *= float64(n) / float64(k)
	}
	type edgeTo struct {
		neighbor, myCol, nbrCol string
	}
	adj := make(map[string][]edgeTo)
	for _, j := range c.Joins {
		adj[j.Left.Table] = append(adj[j.Left.Table], edgeTo{j.Right.Table, j.Left.Column, j.Right.Column})
		adj[j.Right.Table] = append(adj[j.Right.Table], edgeTo{j.Left.Table, j.Right.Column, j.Left.Column})
	}
	var count func(table, from, linkCol string) (map[db.Value]int64, error)
	count = func(table, from, linkCol string) (map[db.Value]int64, error) {
		tab := r.d.Table(table)
		link := tab.Column(linkCol)
		if link == nil {
			return nil, fmt.Errorf("sampling: unknown column %s.%s", table, linkCol)
		}
		out := make(map[db.Value]int64)
		for _, row := range r.samples[table] {
			if !rowPasses(tab, preds[table], row) {
				continue
			}
			m := int64(1)
			for _, ed := range adj[table] {
				if ed.neighbor == from {
					continue
				}
				w, err := count(ed.neighbor, table, ed.nbrCol)
				if err != nil {
					return nil, err
				}
				myCol := tab.Column(ed.myCol)
				m *= w[myCol[row]]
				if m == 0 {
					break
				}
			}
			if m != 0 {
				out[link[row]] += m
			}
		}
		return out, nil
	}
	// Cache predicates per table once.
	for _, t := range c.Tables {
		preds[t] = q.PredsOn(t)
	}
	root := c.Tables[0]
	tab := r.d.Table(root)
	var sampleCount int64
	for _, row := range r.samples[root] {
		if !rowPasses(tab, preds[root], row) {
			continue
		}
		m := int64(1)
		for _, ed := range adj[root] {
			w, err := count(ed.neighbor, root, ed.nbrCol)
			if err != nil {
				return 0, err
			}
			myCol := tab.Column(ed.myCol)
			m *= w[myCol[row]]
			if m == 0 {
				break
			}
		}
		sampleCount += m
	}
	return float64(sampleCount) * scale, nil
}

// IBJS is the index-based join-sampling estimator: it samples only the
// root table and resolves joins exactly through the key indexes.
type IBJS struct {
	d       *db.Database
	k       int
	samples map[string][]int32
}

// NewIBJS draws k uniform root-sample rows per table.
func NewIBJS(d *db.Database, k int, seed int64) (*IBJS, error) {
	rs, err := NewRS(d, k, seed)
	if err != nil {
		return nil, err
	}
	return &IBJS{d: d, k: k, samples: rs.samples}, nil
}

// EstimateCard implements contain.CardEstimator: a Horvitz-Thompson
// estimate from the sampled root rows, with subtree weights counted exactly
// via full scans of filtered children (our key indexes make this the
// index-walk of the IBJS paper).
func (e *IBJS) EstimateCard(q query.Query) (float64, error) {
	if len(q.Tables) == 0 {
		return 0, fmt.Errorf("sampling: query has no tables")
	}
	total := 1.0
	for _, comp := range q.Components() {
		if len(comp.Joins) != len(comp.Tables)-1 {
			return 0, fmt.Errorf("sampling: cyclic join graph not supported")
		}
		c, err := e.componentEstimate(q, comp)
		if err != nil {
			return 0, err
		}
		total *= c
		if total == 0 {
			return 0, nil
		}
	}
	return total, nil
}

func (e *IBJS) componentEstimate(q query.Query, c query.Component) (float64, error) {
	root := pickRoot(c)
	type edgeTo struct {
		neighbor, myCol, nbrCol string
	}
	adj := make(map[string][]edgeTo)
	for _, j := range c.Joins {
		adj[j.Left.Table] = append(adj[j.Left.Table], edgeTo{j.Right.Table, j.Left.Column, j.Right.Column})
		adj[j.Right.Table] = append(adj[j.Right.Table], edgeTo{j.Left.Table, j.Right.Column, j.Left.Column})
	}
	// Exact subtree weights over ALL rows (not samples), as the index walk
	// resolves matches exactly.
	var weights func(table, from, linkCol string) (map[db.Value]int64, error)
	weights = func(table, from, linkCol string) (map[db.Value]int64, error) {
		tab := e.d.Table(table)
		link := tab.Column(linkCol)
		if link == nil {
			return nil, fmt.Errorf("sampling: unknown column %s.%s", table, linkCol)
		}
		preds := q.PredsOn(table)
		out := make(map[db.Value]int64)
		for row := 0; row < tab.NumRows(); row++ {
			if !rowPasses(tab, preds, int32(row)) {
				continue
			}
			m := int64(1)
			for _, ed := range adj[table] {
				if ed.neighbor == from {
					continue
				}
				w, err := weights(ed.neighbor, table, ed.nbrCol)
				if err != nil {
					return nil, err
				}
				m *= w[tab.Column(ed.myCol)[row]]
				if m == 0 {
					break
				}
			}
			if m != 0 {
				out[link[int32(row)]] += m
			}
		}
		return out, nil
	}
	tab := e.d.Table(root)
	rootPreds := q.PredsOn(root)
	n := e.d.NumRows(root)
	rows := e.samples[root]
	if len(rows) == 0 {
		return 0, nil
	}
	childWeights := make([]map[db.Value]int64, 0, len(adj[root]))
	childCols := make([][]db.Value, 0, len(adj[root]))
	for _, ed := range adj[root] {
		w, err := weights(ed.neighbor, root, ed.nbrCol)
		if err != nil {
			return 0, err
		}
		childWeights = append(childWeights, w)
		childCols = append(childCols, tab.Column(ed.myCol))
	}
	var sum int64
	for _, row := range rows {
		if !rowPasses(tab, rootPreds, row) {
			continue
		}
		m := int64(1)
		for i := range childWeights {
			m *= childWeights[i][childCols[i][row]]
			if m == 0 {
				break
			}
		}
		sum += m
	}
	return float64(sum) * float64(n) / float64(len(rows)), nil
}

// pickRoot chooses the component's root table: the star center when
// present (highest join degree), which maximizes what the index walk
// resolves exactly.
func pickRoot(c query.Component) string {
	degree := make(map[string]int)
	for _, j := range c.Joins {
		degree[j.Left.Table]++
		degree[j.Right.Table]++
	}
	root := c.Tables[0]
	for _, t := range c.Tables {
		if degree[t] > degree[root] {
			root = t
		}
	}
	return root
}

func rowPasses(t *db.Table, preds []query.Predicate, row int32) bool {
	for _, p := range preds {
		if !p.Matches(t.Column(p.Col.Column)[row]) {
			return false
		}
	}
	return true
}

var (
	_ contain.CardEstimator = (*RS)(nil)
	_ contain.CardEstimator = (*IBJS)(nil)
)
