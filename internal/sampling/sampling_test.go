package sampling

import (
	"math"
	"testing"

	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/metrics"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func fixture(t *testing.T, titles int) (*db.Database, *exec.Executor) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = titles
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, ex
}

func TestValidation(t *testing.T) {
	d, _ := fixture(t, 100)
	if _, err := NewRS(db.NewDatabase(s), 10, 1); err == nil {
		t.Error("unfrozen database should fail")
	}
	if _, err := NewRS(d, 0, 1); err == nil {
		t.Error("zero sample size should fail")
	}
	rs, err := NewRS(d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.EstimateCard(query.Query{}); err == nil {
		t.Error("empty query should fail")
	}
}

func TestSingleTableUnbiasedness(t *testing.T) {
	d, ex := fixture(t, 2000)
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950")
	truth, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// Average over several sample seeds approaches the truth.
	var sum float64
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		rs, err := NewRS(d, 256, seed)
		if err != nil {
			t.Fatal(err)
		}
		est, err := rs.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	avg := sum / seeds
	if qe := metrics.CardQError(float64(truth), avg); qe > 1.3 {
		t.Errorf("RS single-table average q-error %v (avg %v, truth %d)", qe, avg, truth)
	}
}

func TestFullSampleIsExact(t *testing.T) {
	d, ex := fixture(t, 150)
	// Sample size >= table sizes: both estimators must be exact.
	rs, err := NewRS(d, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := NewIBJS(d, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM title WHERE title.kind_id < 4",
		"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND cast_info.role_id = 2",
		`SELECT * FROM title, cast_info, movie_keyword
		 WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id`,
	}
	for _, sql := range queries {
		q := sqlparse.MustParse(s, sql)
		truth, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		for name, est := range map[string]interface {
			EstimateCard(query.Query) (float64, error)
		}{"RS": rs, "IBJS": ib} {
			got, err := est.EstimateCard(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-float64(truth)) > 1e-9 {
				t.Errorf("%s with full sample: %v != %d for %s", name, got, truth, sql)
			}
		}
	}
}

// The classic RS failure the paper's citations describe: joining small
// independent samples under-estimates joins (often to zero), while IBJS
// stays accurate because only the root is sampled.
func TestIBJSBeatsRSOnJoins(t *testing.T) {
	d, ex := fixture(t, 3000)
	q := sqlparse.MustParse(s, `SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND title.production_year > 1950`)
	truth, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth == 0 {
		t.Skip("empty truth on this seed")
	}
	var rsErr, ibErr float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		rs, err := NewRS(d, 64, seed)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := NewIBJS(d, 64, seed)
		if err != nil {
			t.Fatal(err)
		}
		rsEst, err := rs.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		ibEst, err := ib.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		rsErr += metrics.CardQError(float64(truth), rsEst)
		ibErr += metrics.CardQError(float64(truth), ibEst)
	}
	if ibErr >= rsErr {
		t.Errorf("IBJS (%v) should beat RS (%v) on 2-join queries", ibErr/seeds, rsErr/seeds)
	}
	if ibErr/seeds > 4 {
		t.Errorf("IBJS mean q-error %v too high on star join", ibErr/seeds)
	}
}

func TestCartesianComponents(t *testing.T) {
	d, ex := fixture(t, 200)
	ib, err := NewIBJS(d, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Tables: []string{schema.CastInfo, schema.Title}}
	got, err := ib.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-float64(truth)) > 1e-9 {
		t.Errorf("cartesian: %v != %d", got, truth)
	}
}

func TestEstimatesNonNegative(t *testing.T) {
	d, _ := fixture(t, 500)
	rs, err := NewRS(d, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := NewIBJS(d, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM movie_keyword WHERE movie_keyword.keyword_id > 500",
		"SELECT * FROM title, movie_info WHERE title.id = movie_info.movie_id AND movie_info.info_val < 100",
	}
	for _, sql := range queries {
		q := sqlparse.MustParse(s, sql)
		for _, est := range []interface {
			EstimateCard(query.Query) (float64, error)
		}{rs, ib} {
			got, err := est.EstimateCard(q)
			if err != nil {
				t.Fatal(err)
			}
			if got < 0 || math.IsNaN(got) {
				t.Errorf("estimate %v for %s", got, sql)
			}
		}
	}
}
