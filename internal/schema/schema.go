// Package schema defines the IMDb-like relational schema used throughout the
// repository: table and column catalogs, primary/foreign-key join edges, and
// the featurization dimensions (#T, #C, #O) derived from them.
//
// The schema mirrors the six-table subset of IMDb used by the MSCN paper
// (Kipf et al., CIDR 2019) and by the containment-rate paper: the fact table
// `title` plus five satellite tables that each reference `title.id` through a
// `movie_id` foreign key. All join edges therefore form a star centered on
// `title`, which bounds the number of joins in a query at five — exactly the
// range exercised by the paper's workloads.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Table names of the IMDb-like schema.
const (
	Title        = "title"
	MovieCompany = "movie_companies"
	CastInfo     = "cast_info"
	MovieInfo    = "movie_info"
	MovieInfoIdx = "movie_info_idx"
	MovieKeyword = "movie_keyword"
)

// Column describes a single column of a table.
type Column struct {
	Table string // owning table name
	Name  string // column name, unique within the table
	// Key reports whether the column participates in a join (primary or
	// foreign key). Key columns never carry value predicates; the paper's
	// generator draws predicates from non-key columns only.
	Key bool
}

// Qualified returns the table-qualified column name, e.g. "title.id".
func (c Column) Qualified() string { return c.Table + "." + c.Name }

// JoinEdge is an equi-join edge of the schema join graph. Left is always the
// primary-key side and Right the foreign-key side.
type JoinEdge struct {
	Left  ColumnRef // PK side, e.g. title.id
	Right ColumnRef // FK side, e.g. movie_companies.movie_id
}

// ColumnRef identifies a column by table and column name.
type ColumnRef struct {
	Table  string
	Column string
}

// String returns the qualified "table.column" form.
func (r ColumnRef) String() string { return r.Table + "." + r.Column }

// TableDef describes one table: its columns in catalog order.
type TableDef struct {
	Name    string
	Columns []Column
}

// NonKeyColumns returns the predicate-eligible columns of the table.
func (t TableDef) NonKeyColumns() []Column {
	var out []Column
	for _, c := range t.Columns {
		if !c.Key {
			out = append(out, c)
		}
	}
	return out
}

// Schema is the full catalog: tables, their columns and the join graph.
// A Schema is immutable after construction; all lookup maps are precomputed.
type Schema struct {
	Tables []TableDef
	Joins  []JoinEdge

	tableIndex  map[string]int // table name -> position in Tables
	columnIndex map[string]int // "table.column" -> global column ordinal
	columns     []Column       // flat catalog in global ordinal order
	joinIndex   map[string]int // canonical edge key -> position in Joins
	adjacency   map[string][]JoinEdge
}

// Operators supported in column predicates, in featurization order.
// The paper fixes #O = 3 with operators <, = and >.
const (
	OpLT = "<"
	OpEQ = "="
	OpGT = ">"
)

// Operators lists the predicate operators in their one-hot encoding order.
func Operators() []string { return []string{OpLT, OpEQ, OpGT} }

// NumOperators is #O from the paper's featurization (Table 1).
const NumOperators = 3

// IMDB constructs the six-table IMDb-like schema used by the paper's
// evaluation. The result is a fresh immutable value; callers may share it
// freely across goroutines.
func IMDB() *Schema {
	tables := []TableDef{
		{Name: Title, Columns: []Column{
			{Table: Title, Name: "id", Key: true},
			{Table: Title, Name: "kind_id"},
			{Table: Title, Name: "production_year"},
			{Table: Title, Name: "season_nr"},
			{Table: Title, Name: "episode_nr"},
		}},
		{Name: MovieCompany, Columns: []Column{
			{Table: MovieCompany, Name: "movie_id", Key: true},
			{Table: MovieCompany, Name: "company_id"},
			{Table: MovieCompany, Name: "company_type_id"},
		}},
		{Name: CastInfo, Columns: []Column{
			{Table: CastInfo, Name: "movie_id", Key: true},
			{Table: CastInfo, Name: "person_id"},
			{Table: CastInfo, Name: "role_id"},
			{Table: CastInfo, Name: "nr_order"},
		}},
		{Name: MovieInfo, Columns: []Column{
			{Table: MovieInfo, Name: "movie_id", Key: true},
			{Table: MovieInfo, Name: "info_type_id"},
			{Table: MovieInfo, Name: "info_val"},
		}},
		{Name: MovieInfoIdx, Columns: []Column{
			{Table: MovieInfoIdx, Name: "movie_id", Key: true},
			{Table: MovieInfoIdx, Name: "info_type_id"},
			{Table: MovieInfoIdx, Name: "info_val"},
		}},
		{Name: MovieKeyword, Columns: []Column{
			{Table: MovieKeyword, Name: "movie_id", Key: true},
			{Table: MovieKeyword, Name: "keyword_id"},
		}},
	}
	pk := ColumnRef{Table: Title, Column: "id"}
	joins := []JoinEdge{
		{Left: pk, Right: ColumnRef{Table: MovieCompany, Column: "movie_id"}},
		{Left: pk, Right: ColumnRef{Table: CastInfo, Column: "movie_id"}},
		{Left: pk, Right: ColumnRef{Table: MovieInfo, Column: "movie_id"}},
		{Left: pk, Right: ColumnRef{Table: MovieInfoIdx, Column: "movie_id"}},
		{Left: pk, Right: ColumnRef{Table: MovieKeyword, Column: "movie_id"}},
	}
	return New(tables, joins)
}

// New builds a Schema from table definitions and join edges, precomputing all
// lookup structures. It panics on duplicate tables/columns or joins that
// reference unknown columns, since a malformed schema is a programming error.
func New(tables []TableDef, joins []JoinEdge) *Schema {
	s := &Schema{
		Tables:      tables,
		Joins:       joins,
		tableIndex:  make(map[string]int, len(tables)),
		columnIndex: make(map[string]int),
		joinIndex:   make(map[string]int, len(joins)),
		adjacency:   make(map[string][]JoinEdge),
	}
	for i, t := range tables {
		if _, dup := s.tableIndex[t.Name]; dup {
			panic(fmt.Sprintf("schema: duplicate table %q", t.Name))
		}
		s.tableIndex[t.Name] = i
		for _, c := range t.Columns {
			key := c.Qualified()
			if _, dup := s.columnIndex[key]; dup {
				panic(fmt.Sprintf("schema: duplicate column %q", key))
			}
			s.columnIndex[key] = len(s.columns)
			s.columns = append(s.columns, c)
		}
	}
	for i, j := range joins {
		for _, ref := range []ColumnRef{j.Left, j.Right} {
			if _, ok := s.columnIndex[ref.String()]; !ok {
				panic(fmt.Sprintf("schema: join references unknown column %q", ref))
			}
		}
		s.joinIndex[EdgeKey(j.Left, j.Right)] = i
		s.adjacency[j.Left.Table] = append(s.adjacency[j.Left.Table], j)
		s.adjacency[j.Right.Table] = append(s.adjacency[j.Right.Table], j)
	}
	return s
}

// EdgeKey returns the canonical key of an equi-join between two columns,
// independent of argument order.
func EdgeKey(a, b ColumnRef) string {
	x, y := a.String(), b.String()
	if x > y {
		x, y = y, x
	}
	return x + "=" + y
}

// NumTables is #T from the featurization.
func (s *Schema) NumTables() int { return len(s.Tables) }

// NumColumns is #C from the featurization: all catalog columns.
func (s *Schema) NumColumns() int { return len(s.columns) }

// NumJoins returns the number of join edges in the schema join graph.
func (s *Schema) NumJoins() int { return len(s.Joins) }

// TableID returns the one-hot ordinal of the named table.
func (s *Schema) TableID(name string) (int, bool) {
	i, ok := s.tableIndex[name]
	return i, ok
}

// Table returns the definition of the named table.
func (s *Schema) Table(name string) (TableDef, bool) {
	i, ok := s.tableIndex[name]
	if !ok {
		return TableDef{}, false
	}
	return s.Tables[i], true
}

// ColumnID returns the global one-hot ordinal of the referenced column.
func (s *Schema) ColumnID(ref ColumnRef) (int, bool) {
	i, ok := s.columnIndex[ref.String()]
	return i, ok
}

// ColumnByID returns the column with the given global ordinal.
func (s *Schema) ColumnByID(id int) Column { return s.columns[id] }

// HasColumn reports whether the referenced column exists.
func (s *Schema) HasColumn(ref ColumnRef) bool {
	_, ok := s.columnIndex[ref.String()]
	return ok
}

// JoinID returns the ordinal of the join edge between the two columns,
// independent of argument order.
func (s *Schema) JoinID(a, b ColumnRef) (int, bool) {
	i, ok := s.joinIndex[EdgeKey(a, b)]
	return i, ok
}

// EdgesOf returns the join edges incident to the named table.
func (s *Schema) EdgesOf(table string) []JoinEdge { return s.adjacency[table] }

// OperatorID returns the one-hot ordinal of a predicate operator.
func (s *Schema) OperatorID(op string) (int, bool) {
	switch op {
	case OpLT:
		return 0, true
	case OpEQ:
		return 1, true
	case OpGT:
		return 2, true
	}
	return 0, false
}

// JoinableSets enumerates every FROM-clause table set that forms a connected
// subgraph of the join graph, up to maxTables tables. Each set is returned as
// a sorted slice of table names. Singletons are always connected. The result
// is deterministic (lexicographically sorted).
func (s *Schema) JoinableSets(maxTables int) [][]string {
	names := make([]string, len(s.Tables))
	for i, t := range s.Tables {
		names[i] = t.Name
	}
	var out [][]string
	n := len(names)
	for mask := 1; mask < 1<<n; mask++ {
		var set []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, names[i])
			}
		}
		if len(set) > maxTables {
			continue
		}
		if s.connected(set) {
			sorted := append([]string(nil), set...)
			sort.Strings(sorted)
			out = append(out, sorted)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// SpanningJoins returns, for a connected table set, the join edges linking
// the set (a spanning tree of the induced subgraph). The second result is
// false if the set is not connected in the join graph.
func (s *Schema) SpanningJoins(tables []string) ([]JoinEdge, bool) {
	in := make(map[string]bool, len(tables))
	for _, t := range tables {
		if _, ok := s.tableIndex[t]; !ok {
			return nil, false
		}
		in[t] = true
	}
	if len(tables) <= 1 {
		return nil, true
	}
	visited := map[string]bool{tables[0]: true}
	var edges []JoinEdge
	frontier := []string{tables[0]}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, e := range s.adjacency[cur] {
			other := e.Left.Table
			if other == cur {
				other = e.Right.Table
			}
			if !in[other] || visited[other] {
				continue
			}
			visited[other] = true
			edges = append(edges, e)
			frontier = append(frontier, other)
		}
	}
	if len(visited) != len(tables) {
		return nil, false
	}
	sort.Slice(edges, func(i, j int) bool {
		return EdgeKey(edges[i].Left, edges[i].Right) < EdgeKey(edges[j].Left, edges[j].Right)
	})
	return edges, true
}

func (s *Schema) connected(tables []string) bool {
	_, ok := s.SpanningJoins(tables)
	return ok
}
