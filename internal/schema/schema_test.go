package schema

import (
	"reflect"
	"strings"
	"testing"
)

func TestIMDBCatalogDimensions(t *testing.T) {
	s := IMDB()
	if got, want := s.NumTables(), 6; got != want {
		t.Errorf("NumTables = %d, want %d", got, want)
	}
	// 5 + 3 + 4 + 3 + 3 + 2 columns.
	if got, want := s.NumColumns(), 20; got != want {
		t.Errorf("NumColumns = %d, want %d", got, want)
	}
	if got, want := s.NumJoins(), 5; got != want {
		t.Errorf("NumJoins = %d, want %d", got, want)
	}
}

func TestTableAndColumnLookup(t *testing.T) {
	s := IMDB()
	id, ok := s.TableID(Title)
	if !ok {
		t.Fatalf("TableID(%q) not found", Title)
	}
	if id != 0 {
		t.Errorf("TableID(title) = %d, want 0", id)
	}
	if _, ok := s.TableID("nope"); ok {
		t.Error("TableID of unknown table should fail")
	}

	cid, ok := s.ColumnID(ColumnRef{Table: Title, Column: "production_year"})
	if !ok {
		t.Fatal("ColumnID(title.production_year) not found")
	}
	col := s.ColumnByID(cid)
	if col.Qualified() != "title.production_year" {
		t.Errorf("ColumnByID round trip = %q", col.Qualified())
	}
	if s.HasColumn(ColumnRef{Table: Title, Column: "bogus"}) {
		t.Error("HasColumn should reject unknown column")
	}
}

func TestColumnOrdinalsAreDenseAndUnique(t *testing.T) {
	s := IMDB()
	seen := make(map[int]bool)
	for _, tab := range s.Tables {
		for _, c := range tab.Columns {
			id, ok := s.ColumnID(ColumnRef{Table: c.Table, Column: c.Name})
			if !ok {
				t.Fatalf("missing ordinal for %s", c.Qualified())
			}
			if seen[id] {
				t.Fatalf("duplicate ordinal %d for %s", id, c.Qualified())
			}
			seen[id] = true
			if id < 0 || id >= s.NumColumns() {
				t.Fatalf("ordinal %d out of range", id)
			}
		}
	}
	if len(seen) != s.NumColumns() {
		t.Errorf("ordinals not dense: %d of %d", len(seen), s.NumColumns())
	}
}

func TestNonKeyColumns(t *testing.T) {
	s := IMDB()
	tab, ok := s.Table(Title)
	if !ok {
		t.Fatal("title missing")
	}
	nk := tab.NonKeyColumns()
	if len(nk) != 4 {
		t.Fatalf("title non-key columns = %d, want 4", len(nk))
	}
	for _, c := range nk {
		if c.Key {
			t.Errorf("NonKeyColumns returned key column %s", c.Qualified())
		}
	}
	mk, _ := s.Table(MovieKeyword)
	if got := len(mk.NonKeyColumns()); got != 1 {
		t.Errorf("movie_keyword non-key columns = %d, want 1", got)
	}
}

func TestOperatorIDs(t *testing.T) {
	s := IMDB()
	want := map[string]int{OpLT: 0, OpEQ: 1, OpGT: 2}
	for op, idx := range want {
		got, ok := s.OperatorID(op)
		if !ok || got != idx {
			t.Errorf("OperatorID(%q) = %d,%v want %d,true", op, got, ok, idx)
		}
	}
	if _, ok := s.OperatorID("!="); ok {
		t.Error("OperatorID should reject unsupported operator")
	}
	if len(Operators()) != NumOperators {
		t.Errorf("Operators() length %d != NumOperators %d", len(Operators()), NumOperators)
	}
}

func TestJoinLookupIsOrderIndependent(t *testing.T) {
	s := IMDB()
	a := ColumnRef{Table: Title, Column: "id"}
	b := ColumnRef{Table: CastInfo, Column: "movie_id"}
	i1, ok1 := s.JoinID(a, b)
	i2, ok2 := s.JoinID(b, a)
	if !ok1 || !ok2 || i1 != i2 {
		t.Errorf("JoinID not order independent: (%d,%v) vs (%d,%v)", i1, ok1, i2, ok2)
	}
	if _, ok := s.JoinID(a, ColumnRef{Table: MovieInfo, Column: "info_val"}); ok {
		t.Error("JoinID should reject non-edges")
	}
}

func TestJoinableSets(t *testing.T) {
	s := IMDB()
	sets := s.JoinableSets(6)
	// 6 singletons + all subsets of the 5 satellites combined with title:
	// 2^5 - 1 = 31 multi-table sets. Total 37.
	if got, want := len(sets), 37; got != want {
		t.Fatalf("JoinableSets = %d sets, want %d", got, want)
	}
	for _, set := range sets {
		if len(set) > 1 {
			found := false
			for _, tb := range set {
				if tb == Title {
					found = true
				}
			}
			if !found {
				t.Errorf("multi-table set %v lacks title (disconnected)", set)
			}
		}
		if !sortedUnique(set) {
			t.Errorf("set %v not sorted/unique", set)
		}
	}
	// maxTables caps set size.
	for _, set := range s.JoinableSets(2) {
		if len(set) > 2 {
			t.Errorf("JoinableSets(2) returned %v", set)
		}
	}
}

func TestSpanningJoins(t *testing.T) {
	s := IMDB()
	edges, ok := s.SpanningJoins([]string{Title, CastInfo, MovieKeyword})
	if !ok {
		t.Fatal("expected connected set")
	}
	if len(edges) != 2 {
		t.Fatalf("spanning edges = %d, want 2", len(edges))
	}
	if _, ok := s.SpanningJoins([]string{CastInfo, MovieKeyword}); ok {
		t.Error("satellite-only set should be disconnected")
	}
	if edges, ok := s.SpanningJoins([]string{CastInfo}); !ok || len(edges) != 0 {
		t.Error("singleton should be trivially connected with no edges")
	}
	if _, ok := s.SpanningJoins([]string{"nope"}); ok {
		t.Error("unknown table should not be connected")
	}
}

func TestEdgeKeyCanonical(t *testing.T) {
	a := ColumnRef{Table: "b", Column: "x"}
	b := ColumnRef{Table: "a", Column: "y"}
	if EdgeKey(a, b) != EdgeKey(b, a) {
		t.Error("EdgeKey not symmetric")
	}
	if !strings.Contains(EdgeKey(a, b), "=") {
		t.Error("EdgeKey missing separator")
	}
}

func TestNewPanicsOnMalformedSchema(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate table")
		}
	}()
	New([]TableDef{{Name: "t"}, {Name: "t"}}, nil)
}

func TestNewPanicsOnUnknownJoinColumn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown join column")
		}
	}()
	New(
		[]TableDef{{Name: "t", Columns: []Column{{Table: "t", Name: "id", Key: true}}}},
		[]JoinEdge{{Left: ColumnRef{"t", "id"}, Right: ColumnRef{"u", "tid"}}},
	)
}

func TestEdgesOf(t *testing.T) {
	s := IMDB()
	if got := len(s.EdgesOf(Title)); got != 5 {
		t.Errorf("EdgesOf(title) = %d, want 5", got)
	}
	if got := len(s.EdgesOf(CastInfo)); got != 1 {
		t.Errorf("EdgesOf(cast_info) = %d, want 1", got)
	}
	if got := s.EdgesOf("nope"); got != nil {
		t.Errorf("EdgesOf(unknown) = %v, want nil", got)
	}
}

func sortedUnique(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] >= xs[i] {
			return false
		}
	}
	return true
}

func TestJoinableSetsDeterministic(t *testing.T) {
	s := IMDB()
	a := s.JoinableSets(6)
	b := s.JoinableSets(6)
	if !reflect.DeepEqual(a, b) {
		t.Error("JoinableSets not deterministic")
	}
}
