// Package serve provides serving-side concurrency utilities for the §5.2
// deployment scenario: a DBMS answering many concurrent estimation requests
// over one shared model and queries pool.
//
// Its centerpiece is the Coalescer, a dynamic micro-batcher: concurrent
// single-item calls are aggregated into one batched execution, so N
// in-flight requests pay one pool scan, one cache resolution and one
// matrix-batched head pass instead of N. Batching changes scheduling, never
// results — the batch runner is required to be item-independent (the
// estimator's batched entry points are bit-identical to per-item calls by
// construction), so coalesced answers equal uncoalesced answers exactly.
//
// The batches a Coalescer forms are also the unit downstream batch-level
// optimizations work over: the estimator's batched pass amortizes its rate
// inference across the batch, and with candidate sharing enabled
// (card.Estimator.ShareCandidates) probes of one batch that share a FROM
// clause and signature pattern reuse a single pool selection — so larger
// coalesced batches directly raise selection reuse. The Coalescer itself
// stays result-agnostic; sharing semantics (and the exactness caveat under
// a bounded top-K) live entirely in internal/card.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crn/internal/telemetry"
)

// Coalescer aggregates concurrent Do calls into batched executions of at
// most maxBatch items. One dispatcher runs at a time: while it executes a
// batch, newly arriving calls queue up and form the next batch, so batch
// size adapts to load — single requests on an idle server run immediately
// (no artificial delay), and under concurrency the batch naturally grows
// toward the number of in-flight requests. A positive maxWait additionally
// holds a non-full batch open, trading latency for larger batches on
// lightly loaded servers; maxWait = 0 never waits.
//
// An optional key function deduplicates within a batch: calls whose items
// share a key are executed once and fanned out to every caller.
//
// Callers share per-batch bookkeeping (one group struct, one completion
// channel), so the steady-state overhead is a fraction of an allocation
// per call. The zero value is not usable; construct with NewCoalescer.
// Safe for concurrent use.
type Coalescer[T, R any] struct {
	run      func(context.Context, []T) ([]R, error)
	key      func(T) string
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	cur     *group[T, R]   // forming batch (nil when none)
	sealed  []*group[T, R] // full batches awaiting execution
	running bool
	kick    chan struct{} // pokes a filling dispatcher when a batch fills

	calls, batches, batched   atomic.Uint64
	maxSeen, deduped, dropped atomic.Uint64
	solo                      atomic.Uint64

	// Optional telemetry (nil = off): waitHist records how long a
	// shared-batch caller waited between submitting and its batch starting
	// to execute (the coalesce-wait stage) — sampled, like every stage
	// span, so the per-request cost of the extra clock read amortizes;
	// sizeHist records executed batch sizes. Set before serving traffic
	// (SetTelemetry).
	waitHist   *telemetry.Histogram
	sizeHist   *telemetry.Histogram
	waitSample telemetry.Sampler
}

// group is one batch shared by all its callers: items are appended under
// the coalescer's mutex, outs/err are published before done is closed, and
// each caller reads its slot after <-done (the close is the happens-before
// edge).
type group[T, R any] struct {
	items []T
	done  chan struct{}
	outs  []R
	err   error
	// execNs is stamped by exec (monotonic nanos, telemetry only) before
	// results are published; the close of done is the happens-before edge
	// that makes it readable by every caller.
	execNs int64
}

// NewCoalescer builds a coalescer over a batch runner. maxBatch bounds the
// items per execution (values < 1 are treated as 1); maxWait ≥ 0 is how
// long a non-full batch is held open for stragglers once the dispatcher is
// free (0: run with whatever has queued). key, when non-nil, deduplicates
// items within a batch. run receives the (deduplicated) items and must
// return one result per item, position-aligned. The context passed to run
// is Background for shared batches (the work outlives any single caller)
// and the caller's own context for solo fast-path executions, whose work
// belongs to exactly one caller.
func NewCoalescer[T, R any](maxBatch int, maxWait time.Duration, key func(T) string, run func(context.Context, []T) ([]R, error)) *Coalescer[T, R] {
	if run == nil {
		panic("serve: NewCoalescer needs a batch runner")
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &Coalescer[T, R]{
		run:      run,
		key:      key,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		kick:     make(chan struct{}, 1),
	}
}

// Do submits one item and blocks until its batch has executed (or ctx is
// done). On the shared path the error is the whole batch's error: a failing
// item fails every call that shared its execution, so callers wanting
// per-item error fidelity should retry individually on error — unless the
// error is a SoloError, which marks a solo fast-path failure that already
// ran the item alone. If ctx ends while waiting on a shared batch, Do
// returns ctx.Err() immediately; the batch still executes for the other
// callers and the abandoned result is discarded. A solo execution instead
// receives ctx directly, so cancellation propagates into the runner itself.
func (c *Coalescer[T, R]) Do(ctx context.Context, v T) (R, error) {
	c.mu.Lock()
	if c.maxWait == 0 && !c.running && c.cur == nil && len(c.sealed) == 0 {
		// Solo fast path: nothing is in flight and nothing is queued, so
		// there is no one to share a batch with. Run the item synchronously
		// on the caller's goroutine — no group allocation, no dispatcher
		// goroutine, no gather yield — which removes the coalescing overhead
		// from isolated requests entirely. Marking running keeps concurrent
		// arrivals queueing behind us exactly as behind a dispatcher. A
		// positive maxWait opts out: it explicitly asks for batches to be
		// held open for stragglers, which only the dispatcher can do.
		c.running = true
		c.mu.Unlock()
		return c.doSolo(ctx, v)
	}
	var submitNs int64
	var submitW uint64
	if c.waitHist != nil {
		if submitW = c.waitSample.Next(); submitW != 0 {
			submitNs = telemetry.Now()
		}
	}
	g := c.cur
	if g == nil {
		g = &group[T, R]{items: make([]T, 0, c.maxBatch), done: make(chan struct{})}
		c.cur = g
	}
	slot := len(g.items)
	g.items = append(g.items, v)
	full := len(g.items) >= c.maxBatch
	if full {
		// Seal: the next arrival starts a fresh group, and a filling
		// dispatcher can take this one immediately.
		c.sealed = append(c.sealed, g)
		c.cur = nil
	}
	start := !c.running
	if start {
		c.running = true
	}
	c.mu.Unlock()
	c.calls.Add(1)
	if start {
		go c.dispatch()
	} else if full {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	select {
	case <-g.done:
		if submitW != 0 && g.execNs != 0 {
			c.waitHist.ObserveN(float64(g.execNs-submitNs)*1e-9, submitW)
		}
		if g.err != nil {
			var zero R
			return zero, g.err
		}
		return g.outs[slot], nil
	case <-ctx.Done():
		c.dropped.Add(1)
		var zero R
		return zero, ctx.Err()
	}
}

// doSolo executes one item synchronously for the caller that found the
// coalescer idle. The caller owns the dispatcher role (running is set), so
// on the way out it must hand queued work — requests that arrived while the
// solo item ran — to a real dispatcher, or clear the flag. The handoff runs
// in a defer: the runner executes on the caller's goroutine here, and if it
// panics into a recovering caller (net/http handlers recover), a skipped
// handoff would leave running set forever and wedge every future call.
func (c *Coalescer[T, R]) doSolo(ctx context.Context, v T) (R, error) {
	defer func() {
		c.mu.Lock()
		n, full := c.pendingLocked()
		if n == 0 && !full {
			c.running = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		go c.dispatch()
	}()
	c.calls.Add(1)
	var out R
	var err error
	if err = ctx.Err(); err != nil {
		// Cancelled before execution: an abandoned slot, minus the batch
		// that would have run for nobody.
		c.dropped.Add(1)
	} else {
		c.solo.Add(1)
		c.sizeHist.Observe(1)
		c.batches.Add(1)
		c.batched.Add(1)
		if c.maxSeen.Load() == 0 {
			c.maxSeen.CompareAndSwap(0, 1)
		}
		var outs []R
		single := [1]T{v}
		// The caller's own context: a solo run serves exactly this caller,
		// so its cancellation must reach the runner (the shared-batch path
		// cannot honor one caller's deadline; this path can and does).
		outs, err = c.run(ctx, single[:])
		if err == nil && len(outs) != 1 {
			err = fmt.Errorf("serve: batch runner returned %d results for 1 item", len(outs))
		}
		if err == nil {
			out = outs[0]
		} else {
			// Mark the failure as solo: the item already ran alone, so a
			// caller's error-isolation retry would repeat identical work.
			err = &SoloError{Err: err}
		}
	}
	return out, err
}

// SoloError wraps an error from a solo fast-path execution. The failed run
// served exactly the one caller that receives it, so retrying the item
// alone (the error-isolation strategy for shared batches) would repeat the
// identical work for the identical result. Unwrap exposes the underlying
// error to errors.Is/As.
type SoloError struct{ Err error }

func (e *SoloError) Error() string { return e.Err.Error() }
func (e *SoloError) Unwrap() error { return e.Err }

// take pops the next batch to execute: the oldest sealed group, else the
// forming group. Returns nil when nothing is pending. Callers hold c.mu.
func (c *Coalescer[T, R]) take() *group[T, R] {
	if len(c.sealed) > 0 {
		g := c.sealed[0]
		c.sealed = append(c.sealed[:0], c.sealed[1:]...)
		return g
	}
	g := c.cur
	c.cur = nil
	return g
}

// pendingLocked reports the forming group's size and whether a batch is
// ready to run at full size. Callers hold c.mu.
func (c *Coalescer[T, R]) pendingLocked() (n int, full bool) {
	if c.cur != nil {
		n = len(c.cur.items)
	}
	return n, len(c.sealed) > 0 || n >= c.maxBatch
}

// dispatch drains forming and sealed batches, then exits; Do starts a new
// dispatcher when calls arrive on an idle coalescer, so no goroutine
// lingers while the coalescer is unused.
func (c *Coalescer[T, R]) dispatch() {
	for {
		c.mu.Lock()
		n, full := c.pendingLocked()
		if n == 0 && !full {
			c.running = false
			c.mu.Unlock()
			return
		}
		if !full {
			c.mu.Unlock()
			c.gather()
			c.mu.Lock()
		}
		g := c.take()
		c.mu.Unlock()
		if g != nil && len(g.items) > 0 {
			c.exec(g)
		}
	}
}

// gather lets a non-full forming batch grow before it is taken. First it
// yields the processor while the queue keeps growing: callers woken by the
// previous batch's delivery are runnable but may not have re-enqueued yet,
// and without the yield the dispatcher would race ahead of them and degrade
// to batches of one under saturation (most visible when hardware threads
// are scarce). Yielding costs nanoseconds when nothing is runnable, so an
// isolated request is still served immediately. Then, if a positive
// maxWait is configured, it additionally holds the batch open on the clock.
func (c *Coalescer[T, R]) gather() {
	prev := -1
	for i := 0; i < 8; i++ {
		c.mu.Lock()
		n, full := c.pendingLocked()
		c.mu.Unlock()
		if full {
			return
		}
		if n == prev {
			break
		}
		prev = n
		runtime.Gosched()
	}
	if c.maxWait > 0 {
		c.fill()
	}
}

// fill holds the forming batch open for up to maxWait, returning early when
// a batch is ready at full size.
func (c *Coalescer[T, R]) fill() {
	timer := time.NewTimer(c.maxWait)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			return
		case <-c.kick:
			c.mu.Lock()
			_, full := c.pendingLocked()
			c.mu.Unlock()
			if full {
				return
			}
		}
	}
}

// SetTelemetry attaches the coalesce-wait and batch-size histograms
// (nil = off). Call before the coalescer serves traffic: the fields are
// read without synchronization on the hot path.
func (c *Coalescer[T, R]) SetTelemetry(wait, size *telemetry.Histogram) {
	if c == nil {
		return
	}
	c.waitHist = wait
	c.sizeHist = size
}

// exec runs one batch and publishes its results before closing done.
func (c *Coalescer[T, R]) exec(g *group[T, R]) {
	if c.waitHist != nil || c.sizeHist != nil {
		g.execNs = telemetry.Now() // once per batch, amortized over its callers
		c.sizeHist.Observe(float64(len(g.items)))
	}
	c.batches.Add(1)
	c.batched.Add(uint64(len(g.items)))
	for {
		m := c.maxSeen.Load()
		if uint64(len(g.items)) <= m || c.maxSeen.CompareAndSwap(m, uint64(len(g.items))) {
			break
		}
	}
	items := g.items
	var dups int
	var seen map[string]int
	if c.key != nil && len(items) > 1 {
		seen = make(map[string]int, len(items))
		for _, v := range items {
			k := c.key(v)
			if _, ok := seen[k]; ok {
				dups++
			} else {
				seen[k] = -1
			}
		}
	}
	if dups == 0 {
		// Common case: no duplicates — run on the group's own items and
		// publish the runner's result slice directly, no remapping.
		out, err := c.run(context.Background(), items)
		if err == nil && len(out) != len(items) {
			err = fmt.Errorf("serve: batch runner returned %d results for %d items", len(out), len(items))
		}
		g.outs, g.err = out, err
		close(g.done)
		return
	}
	c.deduped.Add(uint64(dups))
	uniq := make([]T, 0, len(items)-dups)
	slot := make([]int, len(items))
	for i, v := range items {
		k := c.key(v)
		if j := seen[k]; j >= 0 {
			slot[i] = j
			continue
		}
		seen[k] = len(uniq)
		slot[i] = len(uniq)
		uniq = append(uniq, v)
	}
	out, err := c.run(context.Background(), uniq)
	if err == nil && len(out) != len(uniq) {
		err = fmt.Errorf("serve: batch runner returned %d results for %d items", len(out), len(uniq))
	}
	if err != nil {
		g.err = err
		close(g.done)
		return
	}
	outs := make([]R, len(items))
	for i := range items {
		outs[i] = out[slot[i]]
	}
	g.outs = outs
	close(g.done)
}

// Stats is a point-in-time snapshot of coalescing effectiveness.
type Stats struct {
	Calls        uint64 `json:"calls"`         // Do invocations
	Batches      uint64 `json:"batches"`       // batch executions (solo runs included)
	BatchedItems uint64 `json:"batched_items"` // sum of batch sizes (= Calls delivered)
	MaxBatch     uint64 `json:"max_batch"`     // largest batch executed
	Deduped      uint64 `json:"deduped"`       // calls answered by another call's slot
	Abandoned    uint64 `json:"abandoned"`     // calls that left early (ctx done)
	Solo         uint64 `json:"solo"`          // calls served on the idle fast path (no batching machinery)
}

// AvgBatch returns the mean executed batch size (0 before any batch).
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedItems) / float64(s.Batches)
}

// Stats returns the coalescer's counters. Safe on a nil coalescer (all
// zeros), so callers can expose stats without checking whether coalescing
// is configured.
func (c *Coalescer[T, R]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Calls:        c.calls.Load(),
		Batches:      c.batches.Load(),
		BatchedItems: c.batched.Load(),
		MaxBatch:     c.maxSeen.Load(),
		Deduped:      c.deduped.Load(),
		Abandoned:    c.dropped.Load(),
		Solo:         c.solo.Load(),
	}
}
