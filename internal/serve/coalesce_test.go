package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoRunner returns one result per item (item value + 1000) and records
// every batch it executes.
type echoRunner struct {
	mu      sync.Mutex
	batches [][]int
	block   chan struct{} // when non-nil, executions wait here first
}

func (r *echoRunner) run(_ context.Context, items []int) ([]int, error) {
	if r.block != nil {
		<-r.block
	}
	r.mu.Lock()
	r.batches = append(r.batches, append([]int(nil), items...))
	r.mu.Unlock()
	out := make([]int, len(items))
	for i, v := range items {
		out[i] = v + 1000
	}
	return out, nil
}

func TestCoalescerSingleCallRunsImmediately(t *testing.T) {
	r := &echoRunner{}
	c := NewCoalescer(8, 0, nil, r.run)
	got, err := c.Do(context.Background(), 7)
	if err != nil || got != 1007 {
		t.Fatalf("Do = %v, %v", got, err)
	}
	st := c.Stats()
	if st.Calls != 1 || st.Batches != 1 || st.BatchedItems != 1 || st.MaxBatch != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoalescerBatchesConcurrentCalls blocks the first execution so the
// following calls pile up, then checks they were served in shared batches.
func TestCoalescerBatchesConcurrentCalls(t *testing.T) {
	r := &echoRunner{block: make(chan struct{})}
	c := NewCoalescer(16, 0, nil, r.run)

	const n = 10
	var wg sync.WaitGroup
	results := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Do(context.Background(), i)
		}(i)
	}
	// Let the callers queue, then release all executions.
	time.Sleep(20 * time.Millisecond)
	close(r.block)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != i+1000 {
			t.Fatalf("call %d: %v, %v", i, results[i], errs[i])
		}
	}
	st := c.Stats()
	if st.Calls != n || st.BatchedItems != n {
		t.Fatalf("stats = %+v", st)
	}
	if st.Batches >= n {
		t.Fatalf("no coalescing happened: %+v", st)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("expected a shared batch: %+v", st)
	}
}

func TestCoalescerMaxBatchBound(t *testing.T) {
	r := &echoRunner{block: make(chan struct{})}
	c := NewCoalescer(4, 0, nil, r.run)
	var wg sync.WaitGroup
	for i := 0; i < 13; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Do(context.Background(), i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(r.block)
	wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.batches {
		if len(b) > 4 {
			t.Fatalf("batch of %d exceeds maxBatch 4", len(b))
		}
	}
	if st := c.Stats(); st.MaxBatch > 4 {
		t.Fatalf("stats max batch %d exceeds bound", st.MaxBatch)
	}
}

// TestCoalescerMaxWaitFillsBatch checks a positive maxWait holds the batch
// open: two calls arriving within the window share one execution even
// though the dispatcher was idle when the first arrived.
func TestCoalescerMaxWaitFillsBatch(t *testing.T) {
	r := &echoRunner{}
	c := NewCoalescer(2, 200*time.Millisecond, nil, r.run)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				time.Sleep(10 * time.Millisecond)
			}
			if _, err := c.Do(context.Background(), i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Batches != 1 || st.MaxBatch != 2 {
		t.Fatalf("maxWait did not coalesce: %+v", st)
	}
}

// TestCoalescerFullBatchSkipsWait checks the fill wait ends as soon as the
// batch is full — a full batch must not sit out its maxWait.
func TestCoalescerFullBatchSkipsWait(t *testing.T) {
	r := &echoRunner{}
	c := NewCoalescer(2, 10*time.Second, nil, r.run)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Do(context.Background(), i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full batch waited %v", elapsed)
	}
}

func TestCoalescerDedup(t *testing.T) {
	r := &echoRunner{block: make(chan struct{})}
	c := NewCoalescer(16, 0, strconv.Itoa, r.run)
	var wg sync.WaitGroup
	results := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), i%2) // only items 0 and 1
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(r.block)
	wg.Wait()
	for i, v := range results {
		if v != i%2+1000 {
			t.Fatalf("call %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Deduped == 0 {
		t.Fatalf("identical concurrent items were not deduplicated: %+v", st)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.batches {
		seen := map[int]bool{}
		for _, v := range b {
			if seen[v] {
				t.Fatalf("batch %v contains duplicates", b)
			}
			seen[v] = true
		}
	}
}

func TestCoalescerErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	block := make(chan struct{})
	c := NewCoalescer(8, 0, nil, func(_ context.Context, items []int) ([]int, error) {
		<-block
		return nil, boom
	})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do(context.Background(), i)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(block)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("call %d error = %v", i, err)
		}
	}
}

func TestCoalescerShortResultIsError(t *testing.T) {
	c := NewCoalescer(8, 0, nil, func(_ context.Context, items []int) ([]int, error) {
		return items[:0], nil // wrong length
	})
	if _, err := c.Do(context.Background(), 1); err == nil {
		t.Fatal("short batch result must error, not panic or misalign")
	}
}

func TestCoalescerContextCancellation(t *testing.T) {
	block := make(chan struct{})
	var executed atomic.Int64
	c := NewCoalescer(8, 0, nil, func(_ context.Context, items []int) ([]int, error) {
		<-block
		executed.Add(int64(len(items)))
		out := make([]int, len(items))
		return out, nil
	})
	// First call occupies the dispatcher; second call queues then abandons.
	go c.Do(context.Background(), 0)
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned call returned %v", err)
	}
	close(block)
	// The abandoned call's batch still executes for bookkeeping.
	deadline := time.Now().Add(2 * time.Second)
	for executed.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if executed.Load() < 2 {
		t.Fatal("abandoned item was never executed")
	}
	if st := c.Stats(); st.Abandoned != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoalescerHammer drives many goroutines through a tiny-batch coalescer
// under -race; every call must get its own item's result.
func TestCoalescerHammer(t *testing.T) {
	c := NewCoalescer(4, 0, nil, func(_ context.Context, items []int) ([]int, error) {
		out := make([]int, len(items))
		for i, v := range items {
			out[i] = v * 3
		}
		return out, nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := w*1000 + i
				got, err := c.Do(context.Background(), v)
				if err != nil || got != v*3 {
					t.Errorf("Do(%d) = %d, %v", v, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Calls != 1600 || st.BatchedItems != 1600 {
		t.Fatalf("stats = %+v", st)
	}
	// The dispatcher exits when drained: a fresh call still works.
	if got, err := c.Do(context.Background(), 5); err != nil || got != 15 {
		t.Fatalf("post-drain Do = %v, %v", got, err)
	}
	_ = fmt.Sprint(st)
}

// TestCoalescerSoloFastPath pins the idle-coalescer bypass: an isolated
// call must execute synchronously (Solo counter moves, one batch of one)
// and queued work arriving behind a solo run must still be served.
func TestCoalescerSoloFastPath(t *testing.T) {
	r := &echoRunner{}
	c := NewCoalescer(8, 0, nil, r.run)
	for i := 0; i < 5; i++ {
		got, err := c.Do(context.Background(), i)
		if err != nil || got != i+1000 {
			t.Fatalf("Do(%d) = %v, %v", i, got, err)
		}
	}
	st := c.Stats()
	if st.Solo != 5 {
		t.Fatalf("sequential idle calls should all take the solo path: %+v", st)
	}
	if st.Calls != 5 || st.Batches != 5 || st.BatchedItems != 5 || st.MaxBatch != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Queue arrivals behind a blocked solo run: they must be dispatched
	// when the solo caller hands off, and they share a batch.
	r.block = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Do(context.Background(), 100); err != nil { // solo, blocks in run
			t.Error(err)
		}
	}()
	for c.Stats().Calls < 6 { // until the solo call is inside run
		time.Sleep(time.Millisecond)
	}
	results := make([]int, 3)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), 200+i)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(r.block)
	wg.Wait()
	for i, v := range results {
		if v != 1200+i {
			t.Fatalf("queued call %d got %d", i, v)
		}
	}
	if st := c.Stats(); st.Calls != 9 || st.BatchedItems != 9 {
		t.Fatalf("handoff lost calls: %+v", st)
	}
}

// TestCoalescerSoloRespectsMaxWait: with a positive maxWait the caller has
// asked for batches to be held open, so the solo bypass must not apply.
func TestCoalescerSoloRespectsMaxWait(t *testing.T) {
	r := &echoRunner{}
	c := NewCoalescer(8, time.Millisecond, nil, r.run)
	if _, err := c.Do(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Solo != 0 {
		t.Fatalf("solo bypass must be disabled under maxWait: %+v", st)
	}
}

// TestCoalescerSoloCancelledContext: a cancelled caller on the idle path
// returns its context error without executing and without wedging the
// dispatcher handoff.
func TestCoalescerSoloCancelledContext(t *testing.T) {
	r := &echoRunner{}
	c := NewCoalescer(8, 0, nil, r.run)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solo call returned %v", err)
	}
	st := c.Stats()
	if st.Abandoned != 1 || st.Batches != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The coalescer is not wedged: a live call still works (and is solo).
	if got, err := c.Do(context.Background(), 2); err != nil || got != 1002 {
		t.Fatalf("post-cancel Do = %v, %v", got, err)
	}
	if st := c.Stats(); st.Solo != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoalescerSoloErrorPropagates: the solo runner's error reaches the
// caller directly (no shared-batch fan-out involved).
func TestCoalescerSoloErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	c := NewCoalescer(8, 0, nil, func(_ context.Context, items []int) ([]int, error) { return nil, boom })
	if _, err := c.Do(context.Background(), 1); !errors.Is(err, boom) {
		t.Fatalf("solo error = %v", err)
	}
}

// TestCoalescerSoloPanicDoesNotWedge: the solo path runs the batch runner
// on the caller's goroutine; if the runner panics into a recovering caller
// (net/http recovers handler panics), the coalescer must still hand off the
// dispatcher role instead of leaving `running` set forever.
func TestCoalescerSoloPanicDoesNotWedge(t *testing.T) {
	var boom atomic.Bool
	boom.Store(true)
	c := NewCoalescer(8, 0, nil, func(_ context.Context, items []int) ([]int, error) {
		if boom.Swap(false) {
			panic("runner exploded")
		}
		out := make([]int, len(items))
		for i, v := range items {
			out[i] = v + 1000
		}
		return out, nil
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the solo runner panic to propagate")
			}
		}()
		c.Do(context.Background(), 1)
	}()
	// The coalescer must not be wedged: the next call is served.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, err := c.Do(context.Background(), 2); err != nil || got != 1002 {
			t.Errorf("post-panic Do = %v, %v", got, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("coalescer wedged after a solo panic")
	}
}

// TestCoalescerSoloPropagatesContext: a solo run receives the caller's own
// context, so a deadline can abort the in-flight work (the shared-batch
// path deliberately cannot).
func TestCoalescerSoloPropagatesContext(t *testing.T) {
	c := NewCoalescer(8, 0, nil, func(ctx context.Context, items []int) ([]int, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Do(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("solo run ignored the caller deadline: %v", err)
	}
	var solo *SoloError
	if !errors.As(err, &solo) {
		t.Fatalf("solo failure should be marked as SoloError: %v", err)
	}
}

// TestCoalescerSoloErrorMarked: solo failures carry the SoloError marker
// (so callers skip the shared-batch error-isolation retry) while remaining
// matchable with errors.Is.
func TestCoalescerSoloErrorMarked(t *testing.T) {
	boom := errors.New("boom")
	c := NewCoalescer(8, 0, nil, func(context.Context, []int) ([]int, error) { return nil, boom })
	_, err := c.Do(context.Background(), 1)
	if !errors.Is(err, boom) {
		t.Fatalf("solo error = %v", err)
	}
	var solo *SoloError
	if !errors.As(err, &solo) || !errors.Is(solo.Err, boom) {
		t.Fatalf("solo error not marked: %v", err)
	}
}
