// Package sqlparse parses the conjunctive SQL dialect of the paper into
// query.Query values:
//
//	SELECT * FROM t1, t2 WHERE t1.id = t2.movie_id AND t1.col > 42
//	SELECT * FROM t WHERE TRUE
//
// The dialect covers exactly the paper's query class: SELECT * projections,
// comma-separated FROM lists, and WHERE clauses that are conjunctions of
// equi-joins (column = column) and column predicates (column {<,=,>}
// integer). Keywords are case-insensitive; a trailing semicolon is allowed.
package sqlparse

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"crn/internal/query"
	"crn/internal/schema"
)

// ErrDialect is the sentinel wrapped by every parse failure: the input is
// outside the supported conjunctive dialect (or malformed). Callers match it
// with errors.Is to distinguish bad query text from system errors.
var ErrDialect = errors.New("unsupported SQL dialect")

// StringInterner resolves string literals to the integer codes stored in
// the database (the §9 strings extension); implemented by dict.Dictionary.
type StringInterner interface {
	Code(col schema.ColumnRef, literal string) (int64, bool)
}

// Parse parses a SQL string and validates it against the schema. String
// literals are rejected; use ParseWith to supply a dictionary.
func Parse(s *schema.Schema, sql string) (query.Query, error) {
	return ParseWith(s, nil, sql)
}

// ParseWith parses a SQL string, resolving quoted string literals in
// equality predicates through the interner (col = 'literal' becomes an
// integer equality on the literal's code; unknown literals map to code 0,
// which matches nothing — the correct semantics for a value absent from
// the database). Order comparisons on strings are rejected, as interned
// codes carry no order (§9).
func ParseWith(s *schema.Schema, dict StringInterner, sql string) (query.Query, error) {
	p := &parser{toks: lex(sql), dict: dict}
	q, err := p.parse(s)
	if err != nil {
		return query.Query{}, fmt.Errorf("sqlparse: %w: %w", ErrDialect, err)
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and examples
// with literal queries.
func MustParse(s *schema.Schema, sql string) query.Query {
	q, err := Parse(s, sql)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString // 'quoted literal'
	tokSymbol // * , . ; < = >
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) []token {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*' || c == ',' || c == '.' || c == ';' || c == '<' || c == '=' || c == '>':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				toks = append(toks, token{tokSymbol, "'", i}) // unterminated
				i++
				continue
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c == '-' || unicode.IsDigit(c):
			j := i + 1
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks
}

type parser struct {
	toks []token
	pos  int
	dict StringInterner
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("expected %s at position %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("expected %q at position %d, got %q", sym, t.pos, t.text)
	}
	return nil
}

func (p *parser) parse(s *schema.Schema) (query.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return query.Query{}, err
	}
	if err := p.expectSymbol("*"); err != nil {
		return query.Query{}, fmt.Errorf("only SELECT * queries are supported: %w", err)
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return query.Query{}, err
	}
	tables, err := p.tableList()
	if err != nil {
		return query.Query{}, err
	}
	var joins []query.Join
	var preds []query.Predicate
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "WHERE") {
		p.next()
		joins, preds, err = p.whereClause()
		if err != nil {
			return query.Query{}, err
		}
	}
	if t := p.peek(); t.kind == tokSymbol && t.text == ";" {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return query.Query{}, fmt.Errorf("unexpected trailing input %q at position %d", t.text, t.pos)
	}
	return query.New(s, tables, joins, preds)
}

func (p *parser) tableList() ([]string, error) {
	var tables []string
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("expected table name at position %d, got %q", t.pos, t.text)
		}
		tables = append(tables, strings.ToLower(t.text))
		if nxt := p.peek(); nxt.kind == tokSymbol && nxt.text == "," {
			p.next()
			continue
		}
		return tables, nil
	}
}

func (p *parser) whereClause() ([]query.Join, []query.Predicate, error) {
	var joins []query.Join
	var preds []query.Predicate
	for {
		if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "TRUE") {
			p.next()
		} else {
			j, pr, isJoin, err := p.condition()
			if err != nil {
				return nil, nil, err
			}
			if isJoin {
				joins = append(joins, j)
			} else {
				preds = append(preds, pr)
			}
		}
		if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "AND") {
			p.next()
			continue
		}
		return joins, preds, nil
	}
}

func (p *parser) condition() (query.Join, query.Predicate, bool, error) {
	left, err := p.columnRef()
	if err != nil {
		return query.Join{}, query.Predicate{}, false, err
	}
	opTok := p.next()
	if opTok.kind != tokSymbol || (opTok.text != "<" && opTok.text != "=" && opTok.text != ">") {
		return query.Join{}, query.Predicate{}, false,
			fmt.Errorf("expected operator <,=,> at position %d, got %q", opTok.pos, opTok.text)
	}
	rhs := p.peek()
	if rhs.kind == tokNumber {
		p.next()
		v, err := strconv.ParseInt(rhs.text, 10, 64)
		if err != nil {
			return query.Join{}, query.Predicate{}, false,
				fmt.Errorf("bad integer literal %q at position %d", rhs.text, rhs.pos)
		}
		return query.Join{}, query.Predicate{Col: left, Op: opTok.text, Val: v}, false, nil
	}
	if rhs.kind == tokString {
		p.next()
		if p.dict == nil {
			return query.Join{}, query.Predicate{}, false,
				fmt.Errorf("string literal %q at position %d requires a dictionary (use ParseWith)", rhs.text, rhs.pos)
		}
		if opTok.text != "=" {
			return query.Join{}, query.Predicate{}, false,
				fmt.Errorf("string predicates support only = at position %d (interned codes carry no order)", opTok.pos)
		}
		code, ok := p.dict.Code(left, rhs.text)
		if !ok {
			code = 0 // absent literal: matches nothing
		}
		return query.Join{}, query.Predicate{Col: left, Op: opTok.text, Val: code}, false, nil
	}
	right, err := p.columnRef()
	if err != nil {
		return query.Join{}, query.Predicate{}, false, err
	}
	if opTok.text != "=" {
		return query.Join{}, query.Predicate{}, false,
			fmt.Errorf("joins must use = at position %d", opTok.pos)
	}
	return query.Join{Left: left, Right: right}, query.Predicate{}, true, nil
}

func (p *parser) columnRef() (schema.ColumnRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return schema.ColumnRef{}, fmt.Errorf("expected column reference at position %d, got %q", t.pos, t.text)
	}
	if err := p.expectSymbol("."); err != nil {
		return schema.ColumnRef{}, fmt.Errorf("column references must be table-qualified: %w", err)
	}
	c := p.next()
	if c.kind != tokIdent {
		return schema.ColumnRef{}, fmt.Errorf("expected column name at position %d, got %q", c.pos, c.text)
	}
	return schema.ColumnRef{Table: strings.ToLower(t.text), Column: strings.ToLower(c.text)}, nil
}
