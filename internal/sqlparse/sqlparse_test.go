package sqlparse

import (
	"strings"
	"testing"

	"crn/internal/schema"
)

var s = schema.IMDB()

func TestParseSimple(t *testing.T) {
	q, err := Parse(s, "SELECT * FROM title WHERE title.production_year > 1990")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Tables[0] != "title" {
		t.Errorf("tables = %v", q.Tables)
	}
	if len(q.Preds) != 1 || q.Preds[0].Val != 1990 || q.Preds[0].Op != schema.OpGT {
		t.Errorf("preds = %v", q.Preds)
	}
	if len(q.Joins) != 0 {
		t.Errorf("joins = %v", q.Joins)
	}
}

func TestParseJoinQuery(t *testing.T) {
	q, err := Parse(s, `SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND movie_keyword.movie_id = title.id
		AND cast_info.role_id = 2 AND title.kind_id < 4`)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumJoins() != 2 {
		t.Errorf("NumJoins = %d", q.NumJoins())
	}
	if len(q.Preds) != 2 {
		t.Errorf("preds = %v", q.Preds)
	}
	if q.FROMKey() != "cast_info,movie_keyword,title" {
		t.Errorf("FROMKey = %q", q.FROMKey())
	}
}

func TestParseWhereTrue(t *testing.T) {
	q, err := Parse(s, "SELECT * FROM movie_keyword WHERE TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 0 || len(q.Joins) != 0 {
		t.Errorf("WHERE TRUE should be empty, got %v %v", q.Joins, q.Preds)
	}
	// No WHERE at all is also fine.
	q2, err := Parse(s, "SELECT * FROM movie_keyword")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(q2) {
		t.Error("missing WHERE should equal WHERE TRUE")
	}
}

func TestParseCaseInsensitiveAndSemicolon(t *testing.T) {
	q, err := Parse(s, "select * from TITLE where Title.Kind_ID = 3;")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Col.String() != "title.kind_id" {
		t.Errorf("col = %v", q.Preds[0].Col)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q, err := Parse(s, "SELECT * FROM title WHERE title.season_nr > -1")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Val != -1 {
		t.Errorf("val = %d", q.Preds[0].Val)
	}
}

func TestRoundTrip(t *testing.T) {
	sqls := []string{
		"SELECT * FROM title WHERE TRUE",
		"SELECT * FROM cast_info, title WHERE cast_info.movie_id = title.id AND cast_info.nr_order < 3",
		"SELECT * FROM movie_info, title WHERE movie_info.movie_id = title.id AND movie_info.info_val > 500 AND title.kind_id = 1",
	}
	for _, in := range sqls {
		q, err := Parse(s, in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		again, err := Parse(s, q.SQL())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.SQL(), err)
		}
		if !q.Equal(again) {
			t.Errorf("round trip changed query: %q -> %q", q.SQL(), again.SQL())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT a FROM title", "SELECT *"},
		{"FROM title", "SELECT"},
		{"SELECT * title", "FROM"},
		{"SELECT * FROM", "table name"},
		{"SELECT * FROM ghost", "unknown table"},
		{"SELECT * FROM title WHERE", "column reference"},
		{"SELECT * FROM title WHERE kind_id = 3", "table-qualified"},
		{"SELECT * FROM title WHERE title.kind_id ! 3", "operator"},
		{"SELECT * FROM title WHERE title.kind_id = 3 extra", "trailing"},
		{"SELECT * FROM title, cast_info WHERE title.id < cast_info.movie_id", "joins must use ="},
		{"SELECT * FROM title WHERE title.ghost = 3", "unknown column"},
		{"SELECT * FROM cast_info WHERE title.kind_id = 3", "outside FROM"},
	}
	for _, c := range cases {
		_, err := Parse(s, c.sql)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.sql, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.sql, err, c.want)
		}
	}
}

// fakeDict implements StringInterner for parser tests.
type fakeDict map[string]int64

func (f fakeDict) Code(col schema.ColumnRef, literal string) (int64, bool) {
	code, ok := f[col.String()+"="+literal]
	return code, ok
}

func TestParseWithStringLiterals(t *testing.T) {
	d := fakeDict{"title.kind_id=movie": 3}
	q, err := ParseWith(s, d, "SELECT * FROM title WHERE title.kind_id = 'movie'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Val != 3 || q.Preds[0].Op != schema.OpEQ {
		t.Errorf("pred = %v", q.Preds[0])
	}
	// Unknown literal: code 0, matches nothing but parses fine.
	q, err = ParseWith(s, d, "SELECT * FROM title WHERE title.kind_id = 'ghost'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Val != 0 {
		t.Errorf("unknown literal code = %d, want 0", q.Preds[0].Val)
	}
}

func TestParseStringErrors(t *testing.T) {
	// Without a dictionary, string literals are rejected.
	if _, err := Parse(s, "SELECT * FROM title WHERE title.kind_id = 'movie'"); err == nil {
		t.Error("string literal without dictionary should fail")
	}
	d := fakeDict{}
	// Range comparison on strings rejected.
	if _, err := ParseWith(s, d, "SELECT * FROM title WHERE title.kind_id < 'movie'"); err == nil {
		t.Error("string range predicate should fail")
	}
	// Unterminated string literal.
	if _, err := ParseWith(s, d, "SELECT * FROM title WHERE title.kind_id = 'movie"); err == nil {
		t.Error("unterminated literal should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad SQL")
		}
	}()
	MustParse(s, "not sql")
}

func TestMustParseOK(t *testing.T) {
	q := MustParse(s, "SELECT * FROM title")
	if q.FROMKey() != "title" {
		t.Errorf("FROMKey = %q", q.FROMKey())
	}
}
