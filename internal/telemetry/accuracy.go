package telemetry

import (
	"hash/maphash"
	"sync"
)

// Arm identifies which estimator answered a query: the learned CRN path or
// the baseline fallback. Per-arm q-error distributions are the signal a
// reliability-gated hybrid needs — a mean over both arms hides exactly the
// difference that matters.
type Arm uint8

const (
	ArmCRN Arm = iota
	ArmFallback
)

// String returns the arm's label value.
func (a Arm) String() string {
	if a == ArmFallback {
		return "fallback"
	}
	return "crn"
}

// accuracySlots bounds the recent-estimate ring. The ring is direct-mapped
// (slot = hash(key) mod size): a colliding estimate overwrites, a truth
// arriving after its estimate was overwritten counts unmatched. That keeps
// Note at one hash plus one short critical section — no map, no eviction
// bookkeeping — which is what lets the estimate hot path afford noting
// every request; the price is a statistical (not LRU) retention policy,
// which a quantile tracker is indifferent to.
const accuracySlots = 4096

const accuracyShards = 16

// Accuracy joins arriving execution truths against a bounded ring of
// recent estimates and feeds a per-arm q-error histogram: the live
// accuracy signal. Note is called on the estimate path, Truth on the
// feedback path.
type Accuracy struct {
	shards [accuracyShards]accShard

	// qerr children, resolved once: q-error = max(est/true, true/est),
	// cardinalities clamped to ≥1.
	crn      *Histogram
	fallback *Histogram

	joined    *Counter // truths that matched a ringed estimate
	unmatched *Counter // truths with no recent estimate to join
}

type accEntry struct {
	key string // "" = empty slot
	est float64
	arm Arm
}

type accShard struct {
	mu    sync.Mutex
	slots []accEntry
	_     [24]byte // keep neighboring shard mutexes off one cache line
}

// newAccuracy wires the tracker onto a registry.
func newAccuracy(r *Registry) *Accuracy {
	qerr := r.HistogramVec("crn_accuracy_qerror",
		"Q-error of recent estimates joined against execution feedback, per estimator arm.",
		"arm", QErrorOpts)
	a := &Accuracy{
		crn:      qerr.With(ArmCRN.String()),
		fallback: qerr.With(ArmFallback.String()),
		joined: r.Counter("crn_accuracy_joined_total",
			"Execution truths joined against a recent estimate."),
		unmatched: r.Counter("crn_accuracy_unmatched_total",
			"Execution truths with no recent estimate in the ring."),
	}
	for i := range a.shards {
		a.shards[i].slots = make([]accEntry, accuracySlots/accuracyShards)
	}
	return a
}

// accSeed keys the ring's hash. One process-wide seed: Note and Truth must
// agree on slot placement, and the ring is not an adversarial surface.
var accSeed = maphash.MakeSeed()

// locate hashes key to its shard and slot. maphash uses the runtime's
// hardware-accelerated string hash — on canonical SQL keys (tens to
// hundreds of bytes) it is several times cheaper than a byte-at-a-time
// FNV, and Note sits on the per-request estimate path.
func (a *Accuracy) locate(key string) (*accShard, int) {
	h := maphash.String(accSeed, key)
	s := &a.shards[h%accuracyShards]
	return s, int((h >> 4) % uint64(len(s.slots)))
}

// Note records a served estimate for key (the query's canonical form),
// overwriting whatever occupied its slot. Nil-safe.
func (a *Accuracy) Note(key string, est float64, arm Arm) {
	if a == nil {
		return
	}
	s, slot := a.locate(key)
	s.mu.Lock()
	s.slots[slot] = accEntry{key: key, est: est, arm: arm}
	s.mu.Unlock()
}

// Truth joins an arriving execution truth against the ring and, on a
// match, observes the q-error under the estimate's arm. The matched entry
// is consumed (one truth judges one estimate). Nil-safe.
func (a *Accuracy) Truth(key string, card float64) {
	if a == nil {
		return
	}
	s, slot := a.locate(key)
	s.mu.Lock()
	e := s.slots[slot]
	ok := e.key == key
	if ok {
		s.slots[slot] = accEntry{}
	}
	s.mu.Unlock()
	if !ok {
		a.unmatched.Inc()
		return
	}
	a.joined.Inc()
	h := a.crn
	if e.arm == ArmFallback {
		h = a.fallback
	}
	h.Observe(QError(e.est, card))
}

// Joined returns how many truths matched a ringed estimate. Nil-safe.
func (a *Accuracy) Joined() uint64 { return a.counter(true) }

// Unmatched returns how many truths found no recent estimate. Nil-safe.
func (a *Accuracy) Unmatched() uint64 { return a.counter(false) }

func (a *Accuracy) counter(joined bool) uint64 {
	if a == nil {
		return 0
	}
	if joined {
		return a.joined.Load()
	}
	return a.unmatched.Load()
}

// Hist returns the q-error histogram for an arm (nil on a nil tracker).
func (a *Accuracy) Hist(arm Arm) *Histogram {
	if a == nil {
		return nil
	}
	if arm == ArmFallback {
		return a.fallback
	}
	return a.crn
}

// QError is the symmetric ratio error max(est/true, true/est) with both
// sides clamped to ≥1 (cardinalities; a perfect estimate scores 1).
// Defined locally because telemetry is dependency-free by design.
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}
