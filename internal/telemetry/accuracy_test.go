package telemetry

import (
	"fmt"
	"testing"
)

func TestAccuracyJoinAndArms(t *testing.T) {
	tel := New()
	a := tel.Accuracy
	a.Note("q1", 100, ArmCRN)
	a.Note("q2", 10, ArmFallback)
	a.Truth("q1", 200)   // q-error 2 on the CRN arm
	a.Truth("q2", 1000)  // q-error 100 on the fallback arm
	a.Truth("q-gone", 5) // no recent estimate
	if j := a.joined.Load(); j != 2 {
		t.Fatalf("joined %d, want 2", j)
	}
	if u := a.unmatched.Load(); u != 1 {
		t.Fatalf("unmatched %d, want 1", u)
	}
	crn := a.Hist(ArmCRN).Snapshot()
	fb := a.Hist(ArmFallback).Snapshot()
	if crn.Total() != 1 || fb.Total() != 1 {
		t.Fatalf("arm totals crn=%d fb=%d, want 1/1", crn.Total(), fb.Total())
	}
	if q := crn.Quantile(0.5); q < 2/1.25 || q > 2*1.25 {
		t.Fatalf("crn arm q-error %v, want ≈2", q)
	}
	if q := fb.Quantile(0.5); q < 100/1.25 || q > 100*1.25 {
		t.Fatalf("fallback arm q-error %v, want ≈100", q)
	}
	// A truth is consumed: the second arrival is unmatched.
	a.Truth("q1", 200)
	if u := a.unmatched.Load(); u != 2 {
		t.Fatalf("unmatched after re-truth %d, want 2", u)
	}
}

func TestAccuracyOverwriteAndEviction(t *testing.T) {
	tel := New()
	a := tel.Accuracy
	// Overwrite: the join sees the newest estimate for a key.
	a.Note("q", 10, ArmCRN)
	a.Note("q", 1000, ArmFallback)
	a.Truth("q", 1000)
	if fb := a.Hist(ArmFallback).Snapshot().Total(); fb != 1 {
		t.Fatalf("overwritten estimate not joined on newest arm (fb=%d)", fb)
	}
	if q := a.Hist(ArmFallback).Snapshot().Quantile(0.5); q > 1.25 {
		t.Fatalf("overwritten estimate q-error %v, want ≈1", q)
	}
	// Bounded ring: flooding 2× the slot count keeps at most one joinable
	// estimate per slot — colliding notes overwrite.
	joinedBefore := a.joined.Load()
	const flood = accuracySlots * 2
	for i := 0; i < flood; i++ {
		a.Note(fmt.Sprintf("flood-%d", i), 1, ArmCRN)
	}
	for i := 0; i < flood; i++ {
		a.Truth(fmt.Sprintf("flood-%d", i), 1)
	}
	joined := a.joined.Load() - joinedBefore
	if joined > accuracySlots {
		t.Fatalf("joined %d of %d floods, ring bound is %d slots", joined, flood, accuracySlots)
	}
	if a.unmatched.Load() == 0 {
		t.Fatal("flooding past the ring bound must overwrite some estimates")
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{100, 100, 1},
		{50, 100, 2},
		{200, 100, 2},
		{0, 100, 100}, // zero clamps to 1
		{100, 0, 100},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth); got != c.want {
			t.Errorf("QError(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
	var a *Accuracy
	a.Note("k", 1, ArmCRN) // nil-safe
	a.Truth("k", 1)
	if a.Hist(ArmCRN) != nil {
		t.Fatal("nil tracker must hand out nil histograms")
	}
}
