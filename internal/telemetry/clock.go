package telemetry

import "time"

// clockBase anchors the package's monotonic clock. Reading time.Since on a
// monotonic base compiles down to one runtime nanotime read plus a
// subtraction — about half the cost of time.Now, which must also derive the
// wall clock — and yields a plain int64, so timers built on it are 16-byte
// values instead of 48-byte pairs of time.Time.
var clockBase = time.Now()

// Now returns monotonic nanoseconds since an arbitrary process-local
// epoch (package initialization). Only differences are meaningful; the
// value is strictly positive for the life of the process, so 0 doubles as
// the "never stamped" sentinel in timer fields.
func Now() int64 { return int64(time.Since(clockBase)) }
