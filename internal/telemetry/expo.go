package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of WriteText's output.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText gathers every registered family and writes it in Prometheus
// text exposition format (version 0.0.4): one # HELP and # TYPE comment
// per family followed by its samples, families sorted by name, series in
// stable registration order. Histograms expose cumulative le-buckets
// thinned to power-of-two bounds (every 4th internal bucket — quartic
// sub-buckets stay available to in-process quantile readers, the wire
// carries 28 bounds instead of 113), plus the conventional _sum
// (midpoint-approximated, see HistSnapshot.ApproxSum) and _count series.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		if f.typ == typeHistogram {
			writeHistFamily(bw, f)
			continue
		}
		for _, s := range f.gatherSamples() {
			bw.WriteString(f.name)
			writeLabels(bw, f.labelKey, s.label, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func writeHistFamily(bw *bufio.Writer, f *family) {
	labels, snaps := f.gatherHists()
	for i, snap := range snaps {
		lv := labels[i]
		var cum uint64
		for b, c := range snap.Counts {
			cum += c
			last := b == len(snap.Counts)-1
			if !last && (b+1)%4 != 0 {
				continue // thin to power-of-two bounds
			}
			le := "+Inf"
			if !last {
				le = formatValue(snap.upperBound(b))
			}
			bw.WriteString(f.name)
			bw.WriteString("_bucket")
			writeLabels(bw, f.labelKey, lv, le)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(f.name)
		bw.WriteString("_sum")
		writeLabels(bw, f.labelKey, lv, "")
		bw.WriteByte(' ')
		bw.WriteString(formatValue(snap.ApproxSum()))
		bw.WriteByte('\n')
		bw.WriteString(f.name)
		bw.WriteString("_count")
		writeLabels(bw, f.labelKey, lv, "")
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
}

// writeLabels writes the {key="value"} block; empty key and le omit their
// pair, both empty omits the block.
func writeLabels(bw *bufio.Writer, key, value, le string) {
	if key == "" && le == "" {
		return
	}
	bw.WriteByte('{')
	if key != "" {
		bw.WriteString(key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(value))
		bw.WriteByte('"')
		if le != "" {
			bw.WriteByte(',')
		}
	}
	if le != "" {
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
