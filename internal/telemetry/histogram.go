package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-bucketed histogram with four buckets per
// octave — boundaries at 2^e·{1, 1.25, 1.5, 1.75} — an average growth of
// 2^(1/4) per bucket (worst-case bucket ratio 1.25), so any quantile read
// from the bucket counts is within one bucket ratio of the true sample
// quantile — tight enough to tell a 2µs stage from a 3µs one — while
// Observe stays a single atomic add: the bucket index is computed from the
// raw float64 bit pattern (exponent plus the top two mantissa bits, which
// is exactly the linear-in-octave subdivision above), no branches on data,
// no locks, no allocation.
//
// Buckets span [2^MinExp, 2^MaxExp); values below the floor land in the
// first bucket (harmless for cumulative le-bucket exposition — a ≤-bound
// covers everything smaller), values at or above the ceiling land in a
// dedicated overflow bucket so finite bucket counts never lie.
type Histogram struct {
	counts []atomic.Uint64
	opts   HistogramOpts
}

// HistogramOpts fixes a histogram's bucket layout and unit.
type HistogramOpts struct {
	// MinExp and MaxExp bound the bucketed range [2^MinExp, 2^MaxExp).
	MinExp int
	MaxExp int
	// Seconds marks the histogram as recording durations in seconds; the
	// registry enforces the _seconds naming convention for these.
	Seconds bool
}

// Layout presets. Durations cover 60ns–16s, sizes/counts cover 1–16Mi,
// q-errors cover 1–1Mi; everything outside still lands in an edge bucket.
var (
	DurationOpts = HistogramOpts{MinExp: -24, MaxExp: 4, Seconds: true}
	SizeOpts     = HistogramOpts{MinExp: 0, MaxExp: 24}
	QErrorOpts   = HistogramOpts{MinExp: 0, MaxExp: 20}
)

// newHistogram builds a histogram with the given layout. Histograms are
// created through a Registry so they appear in /metrics.
func newHistogram(o HistogramOpts) *Histogram {
	if o.MaxExp <= o.MinExp {
		panic("telemetry: histogram MaxExp must exceed MinExp")
	}
	n := 4 * (o.MaxExp - o.MinExp)
	return &Histogram{counts: make([]atomic.Uint64, n+1), opts: o}
}

// bucketIndex maps a value to its bucket: 4 buckets per power of two,
// sub-bucket chosen by the top two mantissa bits. Non-positive values and
// NaN map to bucket 0.
func (h *Histogram) bucketIndex(v float64) int {
	if !(v > 0) {
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023 // denormals collapse to the floor bucket
	i := 4*(exp-h.opts.MinExp) + int(bits>>50&3)
	if i < 0 {
		return 0
	}
	if n := len(h.counts) - 1; i >= n {
		return n // overflow bucket: v >= 2^MaxExp
	}
	return i
}

// Observe records one value: a single atomic add on the value's bucket.
// Nil-safe, so disabled telemetry passes nil histograms around freely.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
}

// ObserveN records one value with weight n — the bucket count advances by
// n in a single atomic add. Weighted observations are how sampled stage
// timing stays unbiased: a span recorded for one pass in k carries weight
// k, so totals, sums and quantiles estimate the full population. Nil-safe;
// n = 0 records nothing.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.counts[h.bucketIndex(v)].Add(n)
}

// ObserveDuration records a duration in seconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(d.Seconds())].Add(1)
}

// Snapshot returns a point-in-time copy of the bucket counts. Concurrent
// Observes tear at most by single increments (each bucket is read
// atomically), so totals are monotone across snapshots. Nil-safe: a nil
// histogram snapshots empty.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Opts: h.opts, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram's bucket counts.
// Snapshots of like-shaped histograms are mergeable (for cross-shard or
// cross-process aggregation) and subtractable (for windowed views).
type HistSnapshot struct {
	Opts   HistogramOpts
	Counts []uint64
}

// bucketEdge returns the exact lower edge of bucket i: 2^(minExp+i/4)
// scaled by 1 + (i%4)/4. bucketEdge(minExp, n) for n = 4·(MaxExp−MinExp)
// is the overflow threshold 2^MaxExp.
func bucketEdge(minExp, i int) float64 {
	return math.Ldexp(1+float64(i%4)/4, minExp+i/4)
}

// upperBound returns bucket i's upper edge; the overflow bucket reports
// +Inf.
func (s HistSnapshot) upperBound(i int) float64 {
	if i >= len(s.Counts)-1 {
		return math.Inf(1)
	}
	return bucketEdge(s.Opts.MinExp, i+1)
}

// Total returns the number of observations in the snapshot.
func (s HistSnapshot) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// ApproxSum estimates the sum of all observed values from geometric bucket
// midpoints (each bucket contributes count × √(lo·hi)); exact sums would
// cost a second atomic on the hot path, and every downstream use (averages,
// rate×mean) tolerates the ≤12% per-bucket midpoint error. Overflow-bucket
// values are counted at the ceiling, so the sum is a lower bound there.
func (s HistSnapshot) ApproxSum() float64 {
	var sum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := bucketEdge(s.Opts.MinExp, i)
		mid := lo
		if i == len(s.Counts)-1 {
			mid = math.Ldexp(1, s.Opts.MaxExp)
		} else {
			mid = math.Sqrt(lo * bucketEdge(s.Opts.MinExp, i+1))
		}
		sum += float64(c) * mid
	}
	return sum
}

// Quantile estimates the q-quantile (q in [0,1]) by walking the cumulative
// counts and interpolating geometrically inside the crossing bucket. The
// estimate is within one bucket ratio (≤1.25×) of the true sample
// quantile. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i == len(s.Counts)-1 {
				return math.Ldexp(1, s.Opts.MaxExp) // overflow: report the ceiling
			}
			lo := bucketEdge(s.Opts.MinExp, i)
			hi := bucketEdge(s.Opts.MinExp, i+1)
			frac := (rank - cum) / float64(c)
			return lo * math.Pow(hi/lo, frac)
		}
		cum = next
	}
	return math.Ldexp(1, s.Opts.MaxExp)
}

// Max returns the upper bound of the highest non-empty bucket (+Inf when
// the overflow bucket is populated), 0 when empty.
func (s HistSnapshot) Max() float64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			return s.upperBound(i)
		}
	}
	return 0
}

// Merge returns the bucket-wise sum of two like-shaped snapshots. Merging
// with an empty snapshot returns the other unchanged; merging differently
// shaped snapshots panics (snapshots only ever come from histograms the
// caller created, so a mismatch is a programming error).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Counts) == 0 {
		return o
	}
	if len(o.Counts) == 0 {
		return s
	}
	if s.Opts != o.Opts || len(s.Counts) != len(o.Counts) {
		panic("telemetry: merging differently shaped histogram snapshots")
	}
	out := HistSnapshot{Opts: s.Opts, Counts: make([]uint64, len(s.Counts))}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Sub returns the bucket-wise difference s−o (clamped at zero), the
// windowed view between two snapshots of the same histogram.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	if len(o.Counts) == 0 {
		return s
	}
	if len(s.Counts) == 0 || s.Opts != o.Opts || len(s.Counts) != len(o.Counts) {
		panic("telemetry: subtracting differently shaped histogram snapshots")
	}
	out := HistSnapshot{Opts: s.Opts, Counts: make([]uint64, len(s.Counts))}
	for i := range s.Counts {
		if s.Counts[i] > o.Counts[i] {
			out.Counts[i] = s.Counts[i] - o.Counts[i]
		}
	}
	return out
}
