package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram(HistogramOpts{MinExp: 0, MaxExp: 4})
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {-3, 0}, {math.NaN(), 0}, {0.25, 0}, // at/below floor
		{1.0, 0},    // [1, 1.25)
		{1.3, 1},    // [1.25, 1.5)
		{2.0, 4},    // [2, 2.5)
		{15.99, 15}, // [14, 16)
		{16.0, 16},  // overflow bucket
		{1e300, 16}, // far overflow
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's lower bound must map into that bucket and its upper
	// bound into the next.
	for i := 0; i < len(h.counts)-1; i++ {
		lo := bucketEdge(h.opts.MinExp, i)
		if got := h.bucketIndex(lo); got != i {
			t.Fatalf("lower bound of bucket %d maps to %d", i, got)
		}
	}
}

func TestHistogramQuantileVsSortedReference(t *testing.T) {
	h := newHistogram(DurationOpts)
	rng := rand.New(rand.NewSource(7))
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-normal-ish latencies centered near 10µs with a heavy tail.
		v := 10e-6 * math.Exp(rng.NormFloat64()*1.2)
		vals[i] = v
		h.Observe(v)
	}
	sort.Float64s(vals)
	snap := h.Snapshot()
	if snap.Total() != uint64(n) {
		t.Fatalf("total %d, want %d", snap.Total(), n)
	}
	// The worst-case bucket ratio is 1.25; allow a bit of slack for
	// interpolation at distribution ends.
	const tol = 1.26
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := snap.Quantile(q)
		ref := vals[int(q*float64(n-1))]
		if got > ref*tol || got < ref/tol {
			t.Errorf("q%.3f: histogram %.3g vs reference %.3g (ratio %.3f)",
				q, got, ref, got/ref)
		}
	}
	// ApproxSum within the per-bucket midpoint error of the true sum.
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if as := snap.ApproxSum(); as > sum*1.1 || as < sum/1.1 {
		t.Errorf("ApproxSum %.4g vs true %.4g", as, sum)
	}
}

// TestHistogramConcurrencyStorm hammers one histogram with concurrent
// Observe and Snapshot from many goroutines (run under -race): snapshot
// totals must be monotone, and the final counts exact.
func TestHistogramConcurrencyStorm(t *testing.T) {
	h := newHistogram(DurationOpts)
	const (
		writers = 8
		perW    = 50000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr atomic.Value
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				tot := h.Snapshot().Total()
				if tot < last {
					snapErr.Store("snapshot total went backwards")
					return
				}
				last = tot
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(1e-6 * math.Exp(rng.NormFloat64()))
			}
		}(int64(w))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if msg := snapErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if tot := h.Snapshot().Total(); tot != writers*perW {
		t.Fatalf("lost observations: total %d, want %d", tot, writers*perW)
	}
}

func TestHistogramMergeSub(t *testing.T) {
	a := newHistogram(SizeOpts)
	b := newHistogram(SizeOpts)
	for i := 0; i < 100; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i * 3))
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	m := sa.Merge(sb)
	if m.Total() != 200 {
		t.Fatalf("merged total %d, want 200", m.Total())
	}
	if d := m.Sub(sb); d.Total() != sa.Total() {
		t.Fatalf("sub total %d, want %d", d.Total(), sa.Total())
	}
	// Merging with the empty snapshot is identity.
	if got := (HistSnapshot{}).Merge(sa).Total(); got != sa.Total() {
		t.Fatalf("empty-merge total %d", got)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Total() != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestHistogramMaxAndOverflow(t *testing.T) {
	h := newHistogram(HistogramOpts{MinExp: 0, MaxExp: 4})
	h.Observe(3)
	s := h.Snapshot()
	if m := s.Max(); m < 3 || m > 3.5 {
		t.Fatalf("Max %v for a lone 3", m)
	}
	h.Observe(1000) // above 2^4
	if m := h.Snapshot().Max(); !math.IsInf(m, 1) {
		t.Fatalf("Max %v, want +Inf after overflow", m)
	}
	if q := h.Snapshot().Quantile(1); q != 16 {
		t.Fatalf("overflow quantile %v, want ceiling 16", q)
	}
}
