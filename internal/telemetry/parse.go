package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a small parser for
// the Prometheus text format (enough for everything WriteText emits) used
// by crndiag -watch to consume /metrics, and a linter the test suite runs
// over the exposition output (valid line syntax, no duplicate series,
// naming conventions, coherent histograms).

// ParsedSample is one non-histogram exposition sample.
type ParsedSample struct {
	Labels map[string]string
	Value  float64
}

// ParsedBucket is one cumulative histogram bucket.
type ParsedBucket struct {
	LE  float64 // upper bound, +Inf for the last
	Cum uint64
}

// ParsedHist is one histogram child (one label set) reassembled from its
// _bucket/_sum/_count series.
type ParsedHist struct {
	Labels  map[string]string
	Buckets []ParsedBucket
	Sum     float64
	Count   uint64
}

// Quantile estimates the q-quantile from the cumulative buckets with
// geometric interpolation (bounds are log-spaced). Returns 0 when empty.
func (h *ParsedHist) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	if rank < 1 {
		rank = 1
	}
	var prevCum uint64
	prevLE := 0.0
	for _, b := range h.Buckets {
		if float64(b.Cum) >= rank {
			if math.IsInf(b.LE, 1) {
				return prevLE // everything past the last finite bound: report its floor
			}
			lo := prevLE
			if lo <= 0 {
				lo = b.LE / 2 // bounds are ×2-spaced; synthesize the first floor
			}
			in := b.Cum - prevCum
			if in == 0 {
				return b.LE
			}
			frac := (rank - float64(prevCum)) / float64(in)
			return lo * math.Pow(b.LE/lo, frac)
		}
		prevCum = b.Cum
		if !math.IsInf(b.LE, 1) {
			prevLE = b.LE
		}
	}
	return prevLE
}

// Sub returns the windowed difference h−o for two parses of the same
// histogram series (bucket-aligned by le); mismatched layouts return h.
func (h *ParsedHist) Sub(o *ParsedHist) *ParsedHist {
	if h == nil || o == nil || len(h.Buckets) != len(o.Buckets) {
		return h
	}
	out := &ParsedHist{Labels: h.Labels, Sum: h.Sum - o.Sum}
	if h.Count >= o.Count {
		out.Count = h.Count - o.Count
	}
	out.Buckets = make([]ParsedBucket, len(h.Buckets))
	for i, b := range h.Buckets {
		ob := o.Buckets[i]
		if b.LE != ob.LE {
			return h
		}
		out.Buckets[i] = ParsedBucket{LE: b.LE}
		if b.Cum >= ob.Cum {
			out.Buckets[i].Cum = b.Cum - ob.Cum
		}
	}
	return out
}

// ParsedFamily is one metric family from an exposition parse.
type ParsedFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []ParsedSample         // counter/gauge samples
	Hists   map[string]*ParsedHist // histogram children by canonical label key
}

// Hist returns the histogram child whose labels contain key=value (or the
// sole child for key == ""). Nil when absent.
func (f *ParsedFamily) Hist(key, value string) *ParsedHist {
	if f == nil {
		return nil
	}
	for _, h := range f.Hists {
		if key == "" && len(h.Labels) == 0 {
			return h
		}
		if h.Labels[key] == value {
			return h
		}
	}
	return nil
}

// Sample returns the value of the sample whose labels contain key=value
// (key == "" matches the unlabeled sample); ok reports whether it exists.
func (f *ParsedFamily) Sample(key, value string) (v float64, ok bool) {
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if key == "" && len(s.Labels) == 0 {
			return s.Value, true
		}
		if key != "" && s.Labels[key] == value {
			return s.Value, true
		}
	}
	return 0, false
}

// canonicalLabels serializes a label map (minus le) into a stable child
// key.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// ParseText parses a Prometheus text exposition into families keyed by
// name. Histogram _bucket/_sum/_count series are reassembled under their
// base family. Returns the first syntax error encountered.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	fams, _, err := parseText(r)
	return fams, err
}

// baseName strips a histogram series suffix, returning the family name
// and which series kind the line carried.
func baseName(name string) (base, kind string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

func parseText(r io.Reader) (map[string]*ParsedFamily, []string, error) {
	fams := make(map[string]*ParsedFamily)
	var problems []string
	seenSeries := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) >= 3 && (parts[1] == "HELP" || parts[1] == "TYPE") {
				name := parts[2]
				f := fams[name]
				if f == nil {
					f = &ParsedFamily{Name: name, Hists: map[string]*ParsedHist{}}
					fams[name] = f
				}
				if parts[1] == "HELP" {
					if len(parts) == 4 {
						f.Help = parts[3]
					}
				} else {
					if f.Type != "" {
						problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
					}
					if len(parts) < 4 {
						problems = append(problems, fmt.Sprintf("line %d: TYPE without a type", lineNo))
						continue
					}
					switch parts[3] {
					case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
						f.Type = parts[3]
					default:
						problems = append(problems, fmt.Sprintf("line %d: unknown type %q", lineNo, parts[3]))
					}
					if len(f.Samples) > 0 || len(f.Hists) > 0 {
						problems = append(problems, fmt.Sprintf("line %d: TYPE for %s after its samples", lineNo, name))
					}
				}
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fams, problems, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !validName(name) {
			return fams, problems, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		base, kind := baseName(name)
		f := fams[base]
		isHistSeries := kind != "" && f != nil && f.Type == typeHistogram
		if !isHistSeries {
			f = fams[name]
			if f == nil {
				problems = append(problems, fmt.Sprintf("line %d: sample for %s without TYPE", lineNo, name))
				f = &ParsedFamily{Name: name, Hists: map[string]*ParsedHist{}}
				fams[name] = f
			}
			seriesKey := name + "{" + canonicalLabels(labels) + "}"
			if le, ok := labels["le"]; ok {
				seriesKey += "le=" + le
			}
			if seenSeries[seriesKey] {
				problems = append(problems, fmt.Sprintf("line %d: duplicate series %s", lineNo, seriesKey))
			}
			seenSeries[seriesKey] = true
			f.Samples = append(f.Samples, ParsedSample{Labels: labels, Value: value})
			continue
		}
		childKey := canonicalLabels(labels)
		h := f.Hists[childKey]
		if h == nil {
			hl := make(map[string]string, len(labels))
			for k, v := range labels {
				if k != "le" {
					hl[k] = v
				}
			}
			h = &ParsedHist{Labels: hl}
			f.Hists[childKey] = h
		}
		switch kind {
		case "_bucket":
			leStr, ok := labels["le"]
			if !ok {
				problems = append(problems, fmt.Sprintf("line %d: %s without le label", lineNo, name))
				continue
			}
			le, err := parseLE(leStr)
			if err != nil {
				return fams, problems, fmt.Errorf("line %d: bad le %q", lineNo, leStr)
			}
			seriesKey := base + "{" + childKey + "}le=" + leStr
			if seenSeries[seriesKey] {
				problems = append(problems, fmt.Sprintf("line %d: duplicate series %s", lineNo, seriesKey))
			}
			seenSeries[seriesKey] = true
			h.Buckets = append(h.Buckets, ParsedBucket{LE: le, Cum: uint64(value)})
		case "_sum":
			h.Sum = value
		case "_count":
			h.Count = uint64(value)
		}
	}
	return fams, problems, sc.Err()
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSampleLine splits `name{k="v",...} value` into parts.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		labels = make(map[string]string)
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' && i+1 < len(rest) {
					i++
					switch rest[i] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[i])
					}
					continue
				}
				if c == '"' {
					rest = rest[i+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
	} else if i := strings.IndexByte(rest, ' '); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		return "", nil, 0, fmt.Errorf("no value in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}

// Lint parses an exposition and returns every format problem found:
// syntax errors, samples without TYPE, duplicate series, counters not
// ending in _total, histograms with non-monotone or +Inf-less buckets or
// a _count disagreeing with the +Inf bucket. An empty slice means the
// exposition is clean.
func Lint(r io.Reader) []string {
	fams, problems, err := parseText(r)
	if err != nil {
		return append(problems, err.Error())
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		switch f.Type {
		case typeCounter:
			if !strings.HasSuffix(f.Name, "_total") {
				problems = append(problems, fmt.Sprintf("counter %s does not end in _total", f.Name))
			}
		case typeHistogram:
			for _, h := range f.Hists {
				if len(h.Buckets) == 0 {
					problems = append(problems, fmt.Sprintf("histogram %s has no buckets", f.Name))
					continue
				}
				last := h.Buckets[len(h.Buckets)-1]
				if !math.IsInf(last.LE, 1) {
					problems = append(problems, fmt.Sprintf("histogram %s lacks a +Inf bucket", f.Name))
				} else if last.Cum != h.Count {
					problems = append(problems, fmt.Sprintf("histogram %s: +Inf bucket %d != count %d", f.Name, last.Cum, h.Count))
				}
				for i := 1; i < len(h.Buckets); i++ {
					if h.Buckets[i].LE <= h.Buckets[i-1].LE {
						problems = append(problems, fmt.Sprintf("histogram %s: le bounds not increasing", f.Name))
					}
					if h.Buckets[i].Cum < h.Buckets[i-1].Cum {
						problems = append(problems, fmt.Sprintf("histogram %s: cumulative counts decrease", f.Name))
					}
				}
			}
		}
	}
	return problems
}
