package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe so disabled telemetry costs a nil check and nothing else.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic integer gauge (breaker state, inflight, generation).
// Float-valued gauges register a GaugeFunc instead.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MaxSeriesPerFamily bounds how many distinct label values a labeled
// family materializes. Labels past the bound share one overflow series
// (label value "_other") and bump crn_telemetry_dropped_series_total, so a
// label sourced from unbounded input can never grow the registry without
// bound.
const MaxSeriesPerFamily = 32

// overflowLabel is the shared label value for past-the-bound series.
const overflowLabel = "_other"

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Emit delivers one sample from a collector callback; labelValue is
// ignored by unlabeled families.
type Emit func(value float64, labelValue string)

// sample is one collected (labelValue, value) pair.
type sample struct {
	label string
	value float64
}

// family is one registered metric family: either owned instruments
// (counters/gauges/histograms the hot path writes) or a collector callback
// gathered at exposition time (the migration path for subsystems that
// already keep their own atomic stats — /healthz and /metrics then render
// from the same underlying source).
type family struct {
	name     string
	help     string
	typ      string
	labelKey string // "" = unlabeled
	histOpts HistogramOpts

	mu       sync.Mutex
	order    []string        // label values in registration order
	members  map[string]bool // membership index over order
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	collect func(Emit)     // collector family: invoked per gather
	fn      func() float64 // GaugeFunc
}

// Registry holds metric families for one serving process. Registration
// takes a mutex (it happens at startup); the instruments it hands out are
// lock-free. Family names are unique per registry — a duplicate
// registration panics, which keeps /metrics free of duplicate series by
// construction.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family

	// droppedSeries counts label values refused by MaxSeriesPerFamily.
	droppedSeries *Counter
}

// NewRegistry returns an empty registry with its self-metrics registered.
func NewRegistry() *Registry {
	r := &Registry{fams: make(map[string]*family)}
	r.droppedSeries = r.Counter("crn_telemetry_dropped_series_total",
		"Label values refused by the per-family series bound.")
	return r
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	if f.typ == typeCounter && !strings.HasSuffix(f.name, "_total") {
		panic(fmt.Sprintf("telemetry: counter %q must end in _total", f.name))
	}
	if f.typ == typeHistogram && f.histOpts.Seconds && !strings.HasSuffix(f.name, "_seconds") {
		panic(fmt.Sprintf("telemetry: duration histogram %q must end in _seconds", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric family %q", f.name))
	}
	r.fams[f.name] = f
	return f
}

// childKey resolves labelValue to the series it materializes under the
// cardinality bound: itself while the family has room, the shared
// overflow series after.
func (f *family) childKey(labelValue string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.members == nil {
		f.members = make(map[string]bool, len(f.order))
		for _, v := range f.order {
			f.members[v] = true
		}
	}
	if f.members[labelValue] {
		return labelValue
	}
	if len(f.order) >= MaxSeriesPerFamily {
		if !f.members[overflowLabel] {
			f.members[overflowLabel] = true
			f.order = append(f.order, overflowLabel)
		}
		return overflowLabel
	}
	f.members[labelValue] = true
	f.order = append(f.order, labelValue)
	return labelValue
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	f := &family{name: name, help: help, typ: typeCounter,
		counters: map[string]*Counter{"": c}, order: []string{""}}
	r.register(f)
	return c
}

// Gauge registers and returns an unlabeled integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	f := &family{name: name, help: help, typ: typeGauge,
		gauges: map[string]*Gauge{"": g}, order: []string{""}}
	r.register(f)
	return g
}

// GaugeFunc registers a gauge whose value is read by fn at gather time —
// the zero-cost way to expose a value an existing subsystem already
// maintains.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeGauge, fn: fn})
}

// Histogram registers and returns an unlabeled histogram.
func (r *Registry) Histogram(name, help string, o HistogramOpts) *Histogram {
	h := newHistogram(o)
	f := &family{name: name, help: help, typ: typeHistogram, histOpts: o,
		hists: map[string]*Histogram{"": h}, order: []string{""}}
	r.register(f)
	return h
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec registers a counter family with one label key.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	f := &family{name: name, help: help, typ: typeCounter, labelKey: labelKey,
		counters: map[string]*Counter{}}
	r.register(f)
	return &CounterVec{r: r, f: f}
}

// With returns the counter for labelValue, creating it under the series
// bound (past the bound, the shared overflow counter). Resolve children
// once at setup and keep the *Counter — With takes the family mutex.
// Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	key := v.f.childKey(labelValue)
	if key != labelValue {
		v.r.droppedSeries.Inc()
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.counters[key]
	if !ok {
		c = &Counter{}
		v.f.counters[key] = c
	}
	return c
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	r *Registry
	f *family
}

// HistogramVec registers a histogram family with one label key.
func (r *Registry) HistogramVec(name, help, labelKey string, o HistogramOpts) *HistogramVec {
	if o.Seconds && !strings.HasSuffix(name, "_seconds") {
		panic(fmt.Sprintf("telemetry: duration histogram %q must end in _seconds", name))
	}
	f := &family{name: name, help: help, typ: typeHistogram, labelKey: labelKey,
		histOpts: o, hists: map[string]*Histogram{}}
	r.register(f)
	return &HistogramVec{r: r, f: f}
}

// With returns the histogram for labelValue (see CounterVec.With).
func (v *HistogramVec) With(labelValue string) *Histogram {
	if v == nil {
		return nil
	}
	key := v.f.childKey(labelValue)
	if key != labelValue {
		v.r.droppedSeries.Inc()
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.hists[key]
	if !ok {
		h = newHistogram(v.f.histOpts)
		v.f.hists[key] = h
	}
	return h
}

// CollectCounter registers a counter family whose samples are produced by
// fn at gather time — the bridge that migrates a subsystem's existing
// atomic counters onto the registry without rewriting its hot path.
// fn must emit cumulative values; labelKey "" makes the family unlabeled
// (fn then emits exactly one sample).
func (r *Registry) CollectCounter(name, help, labelKey string, fn func(Emit)) {
	r.register(&family{name: name, help: help, typ: typeCounter,
		labelKey: labelKey, collect: fn})
}

// CollectGauge registers a gauge family gathered from fn (see
// CollectCounter).
func (r *Registry) CollectGauge(name, help, labelKey string, fn func(Emit)) {
	r.register(&family{name: name, help: help, typ: typeGauge,
		labelKey: labelKey, collect: fn})
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// gatherSamples materializes a family's current samples in stable order.
// Histogram families are returned separately via gatherHists.
func (f *family) gatherSamples() []sample {
	if f.fn != nil {
		return []sample{{label: "", value: f.fn()}}
	}
	if f.collect != nil {
		var out []sample
		f.collect(func(v float64, label string) {
			out = append(out, sample{label: label, value: v})
		})
		return out
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]sample, 0, len(f.order))
	for _, lv := range f.order {
		switch f.typ {
		case typeCounter:
			if c := f.counters[lv]; c != nil {
				out = append(out, sample{label: lv, value: float64(c.Load())})
			}
		case typeGauge:
			if g := f.gauges[lv]; g != nil {
				out = append(out, sample{label: lv, value: float64(g.Load())})
			}
		}
	}
	return out
}

// gatherHists snapshots a histogram family's children in stable order.
func (f *family) gatherHists() (labels []string, snaps []HistSnapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, lv := range f.order {
		if h := f.hists[lv]; h != nil {
			labels = append(labels, lv)
			snaps = append(snaps, h.Snapshot())
		}
	}
	return labels, snaps
}
