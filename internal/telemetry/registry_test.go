package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter %d, want 5", c.Load())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Load() != 5 {
		t.Fatalf("gauge %d, want 5", g.Load())
	}
	var nc *Counter
	var ng *Gauge
	nc.Inc()
	ng.Set(3)
	if nc.Load() != 0 || ng.Load() != 0 {
		t.Fatal("nil instruments must be inert")
	}
}

func TestRegistryNamingEnforcement(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "counter without _total", func() { r.Counter("bad_name", "h") })
	mustPanic(t, "invalid name", func() { r.Gauge("1bad", "h") })
	mustPanic(t, "seconds histogram without _seconds", func() {
		r.Histogram("lat_total_ms", "h", DurationOpts)
	})
	r.Counter("dup_total", "h")
	mustPanic(t, "duplicate family", func() { r.Counter("dup_total", "h") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestLabelCardinalityBound: past MaxSeriesPerFamily distinct label
// values, With returns the shared overflow series and the dropped-series
// counter increments — a label fed from unbounded input cannot grow the
// registry without bound.
func TestLabelCardinalityBound(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("lbl_total", "h", "key")
	for i := 0; i < MaxSeriesPerFamily+10; i++ {
		vec.With(fmt.Sprintf("v%d", i)).Inc()
	}
	if got := r.droppedSeries.Load(); got != 10 {
		t.Fatalf("dropped %d, want 10", got)
	}
	over := vec.With(overflowLabel)
	if over.Load() != 10 {
		t.Fatalf("overflow series %d, want 10", over.Load())
	}
	// Existing values still resolve to their own series.
	if vec.With("v0").Load() != 1 {
		t.Fatal("pre-bound series lost")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "lbl_total{"); n != MaxSeriesPerFamily+1 {
		t.Fatalf("exposed %d series, want %d", n, MaxSeriesPerFamily+1)
	}
	// Same bound applies to histogram vecs.
	hv := r.HistogramVec("hl", "h", "key", SizeOpts)
	for i := 0; i < MaxSeriesPerFamily+5; i++ {
		hv.With(fmt.Sprintf("v%d", i)).Observe(1)
	}
	if hv.With(overflowLabel).Snapshot().Total() != 5 {
		t.Fatal("histogram overflow series missing observations")
	}
}

func TestCollectorFamilies(t *testing.T) {
	r := NewRegistry()
	var admitted, shed uint64 = 41, 1
	r.CollectCounter("gate_requests_total", "h", "result", func(e Emit) {
		e(float64(admitted), "admitted")
		e(float64(shed), "shed")
	})
	r.GaugeFunc("inflight", "h", func() float64 { return 3 })
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gate_requests_total{result="admitted"} 41`,
		`gate_requests_total{result="shed"} 1`,
		"inflight 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	admitted = 100
	buf.Reset()
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), `{result="admitted"} 100`) {
		t.Fatal("collector not re-read at gather time")
	}
}

// TestExpositionLintClean: everything the writer emits must pass the
// linter — valid line syntax, no duplicate series, naming conventions,
// coherent cumulative histograms.
func TestExpositionLintClean(t *testing.T) {
	tel := New()
	// Populate everything.
	tel.ReqOK.Inc()
	tel.E2E.Observe(3e-6)
	tel.BatchE2E.Observe(1e-4)
	tel.Stages.Admission.Observe(1e-7)
	tel.Stages.NNForward.Observe(2e-6)
	tel.CoalesceBatch.Observe(17)
	tel.TopKScanned.Observe(120)
	tel.WALFsync.Observe(2e-3)
	tel.Accuracy.Note("q1", 100, ArmCRN)
	tel.Accuracy.Truth("q1", 150)
	tel.Registry().CollectGauge("breaker_state", "h", "", func(e Emit) { e(1, "") })
	var buf bytes.Buffer
	if err := tel.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := Lint(bytes.NewReader(buf.Bytes())); len(problems) != 0 {
		t.Fatalf("lint problems: %v\nexposition:\n%s", problems, buf.String())
	}
}

func TestParseRoundTrip(t *testing.T) {
	tel := New()
	for i := 0; i < 1000; i++ {
		tel.E2E.Observe(5e-6)
		tel.ReqOK.Inc()
	}
	var buf bytes.Buffer
	if err := tel.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req := fams["crn_estimate_requests_total"]
	if v, ok := req.Sample("outcome", OutcomeOK); !ok || v != 1000 {
		t.Fatalf("parsed ok counter %v %v", v, ok)
	}
	h := fams["crn_estimate_duration_seconds"].Hist("", "")
	if h == nil || h.Count != 1000 {
		t.Fatalf("parsed histogram missing or wrong count: %+v", h)
	}
	// The 5µs spike must come back near 5µs through exposition + parse.
	if q := h.Quantile(0.5); q < 2e-6 || q > 1e-5 {
		t.Fatalf("round-trip p50 %v, want ≈5µs", q)
	}
}

func TestLintCatchesProblems(t *testing.T) {
	bad := strings.Join([]string{
		`# TYPE dup counter`, // counter not ending _total
		`dup 1`,
		`dup 2`,           // duplicate series
		`no_type_money 3`, // sample without TYPE
	}, "\n")
	problems := Lint(strings.NewReader(bad))
	if len(problems) < 3 {
		t.Fatalf("lint found %d problems, want ≥3: %v", len(problems), problems)
	}
}
