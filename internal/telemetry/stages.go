package telemetry

import (
	"sync/atomic"
	"time"
)

// The estimate path decomposes into six spans, recorded where the work
// happens rather than where the request enters: the facade times admission
// and coalesce-wait (per request), the batch estimator times candidate
// selection and finalization (per pass), and the rate adapter times cache
// lookup and the NN forward (per pass). Under coalescing a shared pass is
// recorded once — its spans are the work actually done, so the per-stage
// histograms sum to the end-to-end latency histogram on a serial workload
// and show the amortization win under load.
const (
	StageAdmission          = "admission"
	StageCoalesceWait       = "coalesce_wait"
	StageCacheLookup        = "cache_lookup"
	StageCandidateSelection = "candidate_selection"
	StageNNForward          = "nn_forward"
	StageFinalize           = "finalize"
)

// SampleRate is the stage-timing sampling period: one pass in SampleRate
// records its spans, each observed with weight SampleRate, so bucket
// counts, sums and quantiles remain unbiased estimates of the full
// population while the steady-state clock-read cost amortizes to a
// fraction of a read per request. End-to-end latency is never sampled —
// every request lands in the e2e histogram — only the six-way stage
// decomposition is. Must be a power of two (the sampler masks, it does
// not divide).
const SampleRate = 8

// Sampler deals out inverse-probability weights for 1-in-SampleRate
// sampling: Next returns SampleRate on every SampleRate-th call (starting
// with the first, so short-lived tests still see data) and 0 otherwise.
// Safe for concurrent use; the zero value is ready.
type Sampler struct {
	ctr atomic.Uint64
}

// Next draws one sampling decision: the weight to record with, or 0 to
// skip. Cost is one atomic add.
func (s *Sampler) Next() uint64 {
	if s.ctr.Add(1)&(SampleRate-1) == 1 {
		return SampleRate
	}
	return 0
}

// StageSet holds the resolved per-stage histogram children so the hot path
// records through direct pointers — no map lookup, no label resolution.
// A nil StageSet (telemetry off) makes every span a no-op. The embedded
// sampler is shared by every component timing passes against this set, so
// each stage family is sampled at the same 1-in-SampleRate rate.
type StageSet struct {
	Admission          *Histogram
	CoalesceWait       *Histogram
	CacheLookup        *Histogram
	CandidateSelection *Histogram
	NNForward          *Histogram
	Finalize           *Histogram

	sampler Sampler
}

// newStageSet resolves the six stage children of the stage histogram
// family.
func newStageSet(v *HistogramVec) *StageSet {
	return &StageSet{
		Admission:          v.With(StageAdmission),
		CoalesceWait:       v.With(StageCoalesceWait),
		CacheLookup:        v.With(StageCacheLookup),
		CandidateSelection: v.With(StageCandidateSelection),
		NNForward:          v.With(StageNNForward),
		Finalize:           v.With(StageFinalize),
	}
}

// Sample arms a pass timer for a sampled pass — or returns the disabled
// zero timer, reading no clock at all, for the other SampleRate−1 out of
// SampleRate. Components that time interior passes (the batch estimator,
// the rate adapter) start their timers here; the e2e-bearing request timer
// comes from Telemetry.StartTimer instead. Nil-safe.
func (s *StageSet) Sample() StageTimer {
	if s == nil {
		return StageTimer{}
	}
	w := s.sampler.Next()
	if w == 0 {
		return StageTimer{}
	}
	now := Now()
	return StageTimer{start: now, last: now, w: uint32(w)}
}

// StageTimer marks consecutive spans of one pass: each Mark observes the
// time since the previous mark into the given histogram and advances. The
// zero value is disabled — no clock is ever read — so call sites hold a
// StageTimer unconditionally and only arm it (StartTimer, StageSet.Sample)
// when telemetry is on; that is what keeps clock reads off the disabled
// path. Timestamps are monotonic int64 nanos (see Now), which keeps the
// timer a 16-byte value that copies in registers.
//
// A timer can be armed for totals but not spans (start set, weight 0):
// that is the shape Telemetry.StartTimer hands out for unsampled requests,
// where end-to-end latency is still wanted but the stage decomposition is
// skipped. Mark and Touch are no-ops there; Total still works.
//
// Timers nest by construction: an inner component (the rate adapter inside
// an estimation pass) arms its own timer, and the outer timer excludes the
// inner interval by calling Touch when the inner call returns — the spans
// partition wall time instead of double-counting it.
type StageTimer struct {
	start int64 // monotonic nanos at arming; 0 = disabled
	last  int64
	w     uint32 // span observation weight; 0 = spans disabled
}

// StartTimer arms an unsampled stage timer at the current instant: every
// Mark records, with weight 1. Production passes go through
// StageSet.Sample or Telemetry.StartTimer, which sample; this constructor
// is for call sites (and tests) that need deterministic recording.
func StartTimer() StageTimer {
	now := Now()
	return StageTimer{start: now, last: now, w: 1}
}

// Armed reports whether the timer was started (its Total is meaningful).
func (t *StageTimer) Armed() bool { return t.start != 0 }

// Mark observes the span since the previous mark (or start) into h, at the
// timer's sampling weight, and advances. Disabled and span-disabled
// timers, and nil histograms, are no-ops.
func (t *StageTimer) Mark(h *Histogram) {
	if t.w == 0 {
		return
	}
	now := Now()
	h.ObserveN(float64(now-t.last)*1e-9, uint64(t.w))
	t.last = now
}

// Touch advances the span origin without recording — used after a nested
// call that timed its own interior, so the outer timer's next Mark
// excludes it.
func (t *StageTimer) Touch() {
	if t.w != 0 {
		t.last = Now()
	}
}

// Total returns the time since the timer was armed (0 when disabled).
func (t *StageTimer) Total() time.Duration {
	if t.start == 0 {
		return 0
	}
	return time.Duration(Now() - t.start)
}
