package telemetry

import (
	"testing"
	"time"
)

// TestStageTimerPartition: consecutive marks partition the elapsed time —
// the recorded spans sum to the timer's total within clock resolution.
// Uses the unsampled constructor so every mark records deterministically.
func TestStageTimerPartition(t *testing.T) {
	tel := New()
	st := StartTimer()
	if !st.Armed() {
		t.Fatal("StartTimer must arm")
	}
	busy(200 * time.Microsecond)
	st.Mark(tel.Stages.Admission)
	busy(300 * time.Microsecond)
	st.Mark(tel.Stages.NNForward)
	total := st.Total()
	sum := time.Duration(0)
	for _, h := range []*Histogram{tel.Stages.Admission, tel.Stages.NNForward} {
		s := h.Snapshot()
		if s.Total() != 1 {
			t.Fatalf("stage histogram has %d observations, want 1", s.Total())
		}
		sum += time.Duration(s.ApproxSum() * 1e9)
	}
	// Bucket midpoints are within 12% per span; the partition property
	// itself (no gaps, no double count) is what matters.
	if sum > total*3/2 || sum < total/2 {
		t.Fatalf("stage sum %v vs total %v", sum, total)
	}
}

// TestStageTimerNesting: an inner component arming its own timer while
// the outer timer is mid-span must not double-count — the outer call
// Touches past the inner interval, so outer spans + inner spans still
// partition the wall time.
func TestStageTimerNesting(t *testing.T) {
	tel := New()
	outer := StartTimer()
	busy(100 * time.Microsecond)
	outer.Mark(tel.Stages.CandidateSelection)

	// Nested component with its own timer (the rate adapter inside a
	// pass).
	inner := StartTimer()
	busy(150 * time.Microsecond)
	inner.Mark(tel.Stages.CacheLookup)
	busy(150 * time.Microsecond)
	inner.Mark(tel.Stages.NNForward)

	outer.Touch() // exclude the nested interval from the outer spans
	busy(100 * time.Microsecond)
	outer.Mark(tel.Stages.Finalize)
	total := outer.Total()

	var sum time.Duration
	for _, h := range []*Histogram{
		tel.Stages.CandidateSelection, tel.Stages.CacheLookup,
		tel.Stages.NNForward, tel.Stages.Finalize,
	} {
		s := h.Snapshot()
		if s.Total() != 1 {
			t.Fatalf("stage has %d observations, want 1", s.Total())
		}
		sum += time.Duration(s.ApproxSum() * 1e9)
	}
	if sum > total*3/2 {
		t.Fatalf("nested spans double-counted: sum %v > total %v", sum, total)
	}
	if sum < total/2 {
		t.Fatalf("nested spans leave a gap: sum %v vs total %v", sum, total)
	}
}

// TestStageTimerDisabled: the zero timer records nothing and reads no
// clock-derived state.
func TestStageTimerDisabled(t *testing.T) {
	var tel *Telemetry
	st := tel.StartTimer()
	if st.Armed() {
		t.Fatal("nil bundle must yield a disarmed timer")
	}
	h := New().Stages.Admission
	st.Mark(h)
	st.Touch()
	if st.Total() != 0 {
		t.Fatal("disarmed timer reports nonzero total")
	}
	if h.Snapshot().Total() != 0 {
		t.Fatal("disarmed timer recorded an observation")
	}
	if tel.StageSet() != nil || tel.Registry() != nil {
		t.Fatal("nil bundle accessors must return nil")
	}
}

// TestStageTimerSampling: request timers from a live bundle always carry
// the e2e start, but only one in SampleRate arms its stage marks — and a
// sampled mark lands with weight SampleRate, so stage counts estimate the
// full request population.
func TestStageTimerSampling(t *testing.T) {
	tel := New()
	sampled := 0
	for i := 0; i < 3*SampleRate; i++ {
		st := tel.StartTimer()
		if !st.Armed() {
			t.Fatal("request timer from a live bundle must be armed for e2e")
		}
		st.Mark(tel.Stages.Admission)
		if st.Total() <= 0 {
			t.Fatal("armed timer must report a positive total")
		}
		if st.w != 0 {
			sampled++
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of %d request timers, want %d", sampled, 3*SampleRate, 3)
	}
	if got := tel.Stages.Admission.Snapshot().Total(); got != 3*SampleRate {
		t.Fatalf("weighted admission count %d, want %d (3 samples × weight %d)",
			got, 3*SampleRate, SampleRate)
	}
}

// TestStageSetSample: pass timers from StageSet.Sample follow the same
// 1-in-SampleRate schedule; unsampled passes come back disabled (no clock
// read, no recording), and a nil stage set is always disabled.
func TestStageSetSample(t *testing.T) {
	tel := New()
	armed := 0
	for i := 0; i < 2*SampleRate; i++ {
		st := tel.Stages.Sample()
		st.Mark(tel.Stages.Finalize)
		if st.Armed() {
			armed++
		}
	}
	if armed != 2 {
		t.Fatalf("armed %d of %d pass timers, want 2", armed, 2*SampleRate)
	}
	if got := tel.Stages.Finalize.Snapshot().Total(); got != 2*SampleRate {
		t.Fatalf("weighted finalize count %d, want %d", got, 2*SampleRate)
	}
	var nilSet *StageSet
	if st := nilSet.Sample(); st.Armed() {
		t.Fatal("nil stage set must yield a disabled timer")
	}
}

// busy spins for roughly d (sleep granularity is too coarse for span
// tests on some kernels).
func busy(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
