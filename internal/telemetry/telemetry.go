// Package telemetry is the dependency-free production telemetry layer: a
// lock-free metrics registry (atomic counters and gauges, log-bucketed
// mergeable histograms with ~2^(1/4) bucket growth), a per-request stage
// timer decomposing estimates into admission → coalesce-wait →
// cache-lookup → candidate-selection → NN-forward → finalize spans, a
// hand-rolled Prometheus text exposition writer (plus the matching parser
// and linter), and a live accuracy tracker joining execution feedback
// against recent estimates into per-arm q-error histograms.
//
// Design rules, in order: recording on the hot path is a single atomic
// add (histograms bucket by float bit pattern, counters are one
// atomic.Uint64); everything is nil-safe so disabled telemetry is a nil
// check, with nanosecond clock reads only on the enabled path; and the
// package imports nothing beyond the standard library — subsystems hand
// it values, it never reaches into them.
package telemetry

// Outcome label values of crn_estimate_requests_total.
const (
	OutcomeOK       = "ok"
	OutcomeError    = "error"
	OutcomeShed     = "shed"
	OutcomeFallback = "fallback"
)

// Telemetry bundles the serving instruments one estimator (or server)
// records into, with every hot-path child resolved to a direct pointer at
// construction. A nil *Telemetry disables everything: all instruments a
// nil bundle hands out are nil, and nil instruments no-op.
type Telemetry struct {
	reg *Registry

	// Estimate path (facade).
	Requests    *CounterVec // crn_estimate_requests_total{outcome}
	ReqOK       *Counter
	ReqError    *Counter
	ReqShed     *Counter
	ReqFallback *Counter
	E2E         *Histogram // crn_estimate_duration_seconds
	BatchE2E    *Histogram // crn_estimate_batch_duration_seconds
	Stages      *StageSet  // crn_estimate_stage_duration_seconds{stage}

	// Serve layer.
	CoalesceBatch *Histogram // crn_coalesce_batch_size

	// Pool layer.
	TopKScanned *Histogram // crn_pool_topk_scanned
	TopKPruned  *Histogram // crn_pool_topk_pruned

	// Durable layer.
	WALFsync   *Histogram // crn_wal_fsync_duration_seconds
	Checkpoint *Histogram // crn_checkpoint_duration_seconds

	// Live accuracy.
	Accuracy *Accuracy // crn_accuracy_qerror{arm} + join counters
}

// New builds a telemetry bundle over a fresh registry. One bundle serves
// one estimator/server pair; family names are unique per registry, so
// sharing a bundle across two estimators would merge their series.
func New() *Telemetry {
	r := NewRegistry()
	t := &Telemetry{reg: r}
	t.Requests = r.CounterVec("crn_estimate_requests_total",
		"Estimate requests by outcome (ok, error, shed, fallback).", "outcome")
	t.ReqOK = t.Requests.With(OutcomeOK)
	t.ReqError = t.Requests.With(OutcomeError)
	t.ReqShed = t.Requests.With(OutcomeShed)
	t.ReqFallback = t.Requests.With(OutcomeFallback)
	t.E2E = r.Histogram("crn_estimate_duration_seconds",
		"End-to-end single-query estimate latency.", DurationOpts)
	t.BatchE2E = r.Histogram("crn_estimate_batch_duration_seconds",
		"End-to-end explicit-batch estimate latency (per batch call).", DurationOpts)
	t.Stages = newStageSet(r.HistogramVec("crn_estimate_stage_duration_seconds",
		"Estimate latency decomposed by stage; per-pass stages are recorded once per (possibly coalesced) pass.",
		"stage", DurationOpts))
	t.CoalesceBatch = r.Histogram("crn_coalesce_batch_size",
		"Queries per coalesced estimation pass (1 = solo fast path).", SizeOpts)
	t.TopKScanned = r.Histogram("crn_pool_topk_scanned",
		"Candidates scored per top-K pool selection.", SizeOpts)
	t.TopKPruned = r.Histogram("crn_pool_topk_pruned",
		"Candidates pruned unscored per indexed top-K pool selection.", SizeOpts)
	t.WALFsync = r.Histogram("crn_wal_fsync_duration_seconds",
		"Feedback WAL fsync latency.", DurationOpts)
	t.Checkpoint = r.Histogram("crn_checkpoint_duration_seconds",
		"Generation checkpoint write latency.", DurationOpts)
	t.Accuracy = newAccuracy(r)
	return t
}

// Registry returns the underlying registry for exposition and for
// registering collector families over subsystem stats. Nil-safe (nil on a
// nil bundle).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// StartTimer arms a request timer when telemetry is on; on a nil bundle it
// returns the zero (disabled) timer without reading the clock. The timer
// always carries the request's start — every request lands in the e2e
// histogram via Total — but its stage marks are armed for only one request
// in SampleRate (with matching weight), which is what keeps the
// instrumented hot path within a few clock reads per request.
func (t *Telemetry) StartTimer() StageTimer {
	if t == nil {
		return StageTimer{}
	}
	w := t.Stages.sampler.Next()
	now := Now()
	return StageTimer{start: now, last: now, w: uint32(w)}
}

// StageSet returns the stage histograms (nil when disabled).
func (t *Telemetry) StageSet() *StageSet {
	if t == nil {
		return nil
	}
	return t.Stages
}
