package wire

import (
	"encoding/json"
	"fmt"
	"testing"
)

// jsonBatchRequest / jsonBatchResponse mirror crnserve's /estimate/batch
// JSON shapes, so the benchmark compares exactly what the two content types
// cost on the server: decode the request body, encode the response body.
type jsonBatchRequest struct {
	Queries []string `json:"queries"`
}

type jsonBatchResponse struct {
	Cardinalities []float64 `json:"cardinalities"`
	Count         int       `json:"count"`
}

func benchQueries(n int) []string {
	qs := make([]string, n)
	for i := range qs {
		qs[i] = fmt.Sprintf("SELECT * FROM movies, directors WHERE movies.did = directors.id AND movies.year > %d", 1900+i)
	}
	return qs
}

// BenchmarkBatchWire measures one server round of body work for a 64-query
// batch under each codec. The binary path reuses pooled buffers exactly as
// the handler does; the JSON path pays the reflection-driven decode/encode
// it always pays. The bench.sh wire gate pins binary allocs/op at ≤20% of
// JSON's.
func BenchmarkBatchWire(b *testing.B) {
	queries := benchQueries(64)
	ests := make([]float64, len(queries))
	for i := range ests {
		ests[i] = float64(i) * 1234.5
	}

	b.Run("codec=json", func(b *testing.B) {
		body, err := json.Marshal(jsonBatchRequest{Queries: queries})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var req jsonBatchRequest
			if err := json.Unmarshal(body, &req); err != nil {
				b.Fatal(err)
			}
			out, err := json.Marshal(jsonBatchResponse{Cardinalities: ests, Count: len(ests)})
			if err != nil {
				b.Fatal(err)
			}
			_ = out
		}
	})

	b.Run("codec=binary", func(b *testing.B) {
		body := AppendRequest(nil, queries)
		var pool BufferPool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, err := DecodeRequest(body, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(req) != len(queries) {
				b.Fatal("bad decode")
			}
			buf := pool.Get()
			buf = AppendResponse(buf, ests)
			pool.Put(buf)
		}
	})
}
