// Package wire implements the zero-copy binary batch protocol negotiated on
// /estimate/batch via Content-Type: application/x-crn-batch.
//
// Frame format (all integers little-endian, version byte first):
//
//	request:  u8 version=1 | u32 count | count × (u32 len | len bytes of SQL)
//	response: u8 version=1 | u32 count | count × f64 cardinality (IEEE 754 bits)
//
// The request decoder performs exactly two allocations regardless of batch
// size: one []string header block and one byte arena sized to the sum of the
// query lengths. Query strings are unsafe views into that arena — safe
// because the arena is written once, never pooled or reused, and owned by
// the garbage collector like any ordinary allocation; the arena is
// pre-sized, so the backing array never moves after the views are taken.
// Callers may retain the strings indefinitely. Response encoding appends
// raw float64 bits into a caller-provided buffer (see BufferPool), so the
// hot path does no JSON reflection and no per-element boxing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Version is the only frame version this package speaks.
const Version = 1

// ContentType is the negotiation token for the binary batch protocol.
const ContentType = "application/x-crn-batch"

// ErrBadFrame is wrapped by every decode error.
var ErrBadFrame = errors.New("wire: malformed frame")

// ErrTooMany is returned (wrapped) when a request frame declares more
// queries than the caller's limit.
var ErrTooMany = errors.New("wire: too many queries")

const headerSize = 5 // version byte + u32 count

// DecodeRequest parses a request frame. maxQueries bounds the declared
// count (0 means no bound). The returned strings alias a private arena
// copied out of data, so the caller may recycle data immediately.
func DecodeRequest(data []byte, maxQueries int) ([]string, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadFrame, len(data))
	}
	if data[0] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, data[0])
	}
	count := int(binary.LittleEndian.Uint32(data[1:5]))
	if maxQueries > 0 && count > maxQueries {
		return nil, fmt.Errorf("%w: %d > limit %d", ErrTooMany, count, maxQueries)
	}
	// A query record is at least its 4-byte length prefix, so count can
	// never exceed the remaining payload — rejects absurd counts before the
	// header slice is allocated.
	if body := len(data) - headerSize; count > body/4 {
		return nil, fmt.Errorf("%w: count %d exceeds payload (%d bytes)", ErrBadFrame, count, body)
	}

	// First pass: validate the record structure and size the arena.
	total := 0
	off := headerSize
	for i := 0; i < count; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated length prefix for query %d", ErrBadFrame, i)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		if n > len(data)-off {
			return nil, fmt.Errorf("%w: query %d length %d past frame end", ErrBadFrame, i, n)
		}
		off += n
		total += n
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(data)-off)
	}

	// Second pass: copy into the arena and take string views. The arena has
	// exact capacity, so append never reallocates and the views never move.
	queries := make([]string, count)
	arena := make([]byte, 0, total)
	off = headerSize
	for i := 0; i < count; i++ {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		start := len(arena)
		arena = append(arena, data[off:off+n]...)
		if n > 0 {
			queries[i] = unsafe.String(&arena[start], n)
		}
		off += n
	}
	return queries, nil
}

// AppendRequest appends a request frame for queries to buf and returns the
// extended slice. It is the client-side encoder and the test harness for
// DecodeRequest.
func AppendRequest(buf []byte, queries []string) []byte {
	buf = append(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(queries)))
	for _, q := range queries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q)))
		buf = append(buf, q...)
	}
	return buf
}

// AppendResponse appends a response frame carrying ests to buf and returns
// the extended slice.
func AppendResponse(buf []byte, ests []float64) []byte {
	buf = append(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ests)))
	for _, v := range ests {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// ResponseSize returns the encoded size of a response frame with n
// estimates — for pre-sizing pooled buffers.
func ResponseSize(n int) int { return headerSize + 8*n }

// DecodeResponse parses a response frame into a fresh slice.
func DecodeResponse(data []byte) ([]float64, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadFrame, len(data))
	}
	if data[0] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, data[0])
	}
	count := int(binary.LittleEndian.Uint32(data[1:5]))
	if len(data) != headerSize+8*count {
		return nil, fmt.Errorf("%w: %d estimates need %d bytes, frame has %d",
			ErrBadFrame, count, headerSize+8*count, len(data))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[headerSize+8*i:]))
	}
	return out, nil
}

// BufferPool recycles byte buffers for frame encoding and request-body
// reads, counting gets and pool misses so servers can report a reuse rate.
type BufferPool struct {
	pool sync.Pool
	gets atomic.Uint64
	news atomic.Uint64
}

// Get returns a zero-length buffer with whatever capacity the pool had on
// hand (possibly none).
func (p *BufferPool) Get() []byte {
	p.gets.Add(1)
	if b, ok := p.pool.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	p.news.Add(1)
	return nil
}

// Put returns a buffer to the pool. Buffers that never grew are not worth
// keeping.
func (p *BufferPool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}

// Stats reports total Get calls and how many missed the pool (allocated
// fresh). Reuse rate is (gets-misses)/gets.
func (p *BufferPool) Stats() (gets, misses uint64) {
	return p.gets.Load(), p.news.Load()
}
