package wire

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"SELECT * FROM t"},
		{"a", "", "b", strings.Repeat("x", 1000)},
		{"SELECT * FROM movies WHERE year > 1990", "SELECT * FROM movies, directors WHERE movies.did = directors.id"},
	}
	for _, qs := range cases {
		frame := AppendRequest(nil, qs)
		got, err := DecodeRequest(frame, 0)
		if err != nil {
			t.Fatalf("decode %d queries: %v", len(qs), err)
		}
		if len(got) != len(qs) {
			t.Fatalf("count: got %d want %d", len(got), len(qs))
		}
		for i := range qs {
			if got[i] != qs[i] {
				t.Fatalf("query %d: got %q want %q", i, got[i], qs[i])
			}
		}
	}
}

// TestRequestArenaIsolated pins the zero-copy safety contract: the decoded
// strings must not alias the input buffer, so a transport recycling its
// read buffer cannot corrupt queries retained by the estimator (rep cache,
// pool keys).
func TestRequestArenaIsolated(t *testing.T) {
	frame := AppendRequest(nil, []string{"SELECT 1", "SELECT 2"})
	got, err := DecodeRequest(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 0xFF
	}
	if got[0] != "SELECT 1" || got[1] != "SELECT 2" {
		t.Fatalf("decoded strings alias the input buffer: %q %q", got[0], got[1])
	}
}

func TestRequestDecodeErrors(t *testing.T) {
	valid := AppendRequest(nil, []string{"SELECT 1"})
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadFrame},
		{"short header", []byte{Version, 0}, ErrBadFrame},
		{"bad version", append([]byte{99}, valid[1:]...), ErrBadFrame},
		{"count past payload", []byte{Version, 0xFF, 0xFF, 0xFF, 0xFF}, ErrBadFrame},
		{"truncated record", valid[:len(valid)-3], ErrBadFrame},
		{"length past end", func() []byte {
			f := append([]byte(nil), valid...)
			f[5] = 0xF0 // inflate the first query's length prefix
			return f
		}(), ErrBadFrame},
		{"trailing bytes", append(append([]byte(nil), valid...), 1, 2, 3), ErrBadFrame},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.data, 0); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	many := AppendRequest(nil, []string{"a", "b", "c"})
	if _, err := DecodeRequest(many, 2); !errors.Is(err, ErrTooMany) {
		t.Errorf("limit: got %v, want ErrTooMany", err)
	}
	if _, err := DecodeRequest(many, 3); err != nil {
		t.Errorf("at limit: %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1.5, -2.25, math.Inf(1), math.MaxFloat64, 4.2e9},
	}
	for _, ests := range cases {
		frame := AppendResponse(nil, ests)
		if len(frame) != ResponseSize(len(ests)) {
			t.Fatalf("ResponseSize(%d)=%d, frame is %d", len(ests), ResponseSize(len(ests)), len(frame))
		}
		got, err := DecodeResponse(frame)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ests) {
			t.Fatalf("count: got %d want %d", len(got), len(ests))
		}
		for i := range ests {
			if math.Float64bits(got[i]) != math.Float64bits(ests[i]) {
				t.Fatalf("estimate %d: got %v want %v", i, got[i], ests[i])
			}
		}
	}

	if _, err := DecodeResponse([]byte{Version, 1, 0, 0, 0, 9}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short response: got %v", err)
	}
	if _, err := DecodeResponse([]byte{7, 0, 0, 0, 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad version: got %v", err)
	}
}

func TestBufferPoolStats(t *testing.T) {
	var p BufferPool
	b := p.Get()
	if gets, misses := p.Stats(); gets != 1 || misses != 1 {
		t.Fatalf("after first get: gets=%d misses=%d", gets, misses)
	}
	b = append(b, make([]byte, 512)...)
	p.Put(b)
	b2 := p.Get()
	if cap(b2) < 512 || len(b2) != 0 {
		t.Fatalf("recycled buffer: len=%d cap=%d", len(b2), cap(b2))
	}
	if gets, misses := p.Stats(); gets != 2 || misses != 1 {
		t.Fatalf("after reuse: gets=%d misses=%d", gets, misses)
	}
	p.Put(nil) // zero-cap buffers are dropped, not pooled
}

// FuzzBatchFrame feeds arbitrary bytes to both decoders (must never panic)
// and, when the bytes happen to decode, re-encodes and checks the frames
// round-trip exactly.
func FuzzBatchFrame(f *testing.F) {
	f.Add(AppendRequest(nil, []string{"SELECT * FROM t", ""}))
	f.Add(AppendResponse(nil, []float64{1, 2.5}))
	f.Add([]byte{Version, 0xFF, 0xFF, 0xFF, 0x7F, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if qs, err := DecodeRequest(data, 1<<16); err == nil {
			again := AppendRequest(nil, qs)
			if string(again) != string(data) {
				t.Fatalf("request round-trip mismatch: %x vs %x", again, data)
			}
		}
		if ests, err := DecodeResponse(data); err == nil {
			again := AppendResponse(nil, ests)
			if string(again) != string(data) {
				t.Fatalf("response round-trip mismatch: %x vs %x", again, data)
			}
		}
	})
}
