package workload

import (
	"math/rand"
	"testing"

	"crn/internal/exec"
	"crn/internal/query"
)

// Every query and variant the generator produces must pass query.New's
// validation (tables exist, joins are schema edges inside the FROM clause,
// predicates on non-key columns of FROM tables).
func TestGeneratedQueriesAlwaysValid(t *testing.T) {
	d := testDB(t)
	g := NewGenerator(s, d, 77)
	for i := 0; i < 300; i++ {
		q, err := g.InitialQuery(i % 6)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := query.New(s, q.Tables, q.Joins, q.Preds); err != nil {
			t.Fatalf("invalid initial query %s: %v", q, err)
		}
		v := g.Variant(q)
		if _, err := query.New(s, v.Tables, v.Joins, v.Preds); err != nil {
			t.Fatalf("invalid variant %s: %v", v, err)
		}
	}
}

// Scale-generator queries must be valid too, and must stay executable.
func TestScaleGeneratorQueriesExecutable(t *testing.T) {
	d := testDB(t)
	g := NewScaleGenerator(s, d, 78)
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.Queries(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if _, err := ex.Cardinality(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
}

// Containment labels must be consistent with cardinality labels:
// rate(Q1,Q2)·|Q1| = |Q1∩Q2| exactly (both come from the same executor).
func TestLabelConsistency(t *testing.T) {
	d := testDB(t)
	g := NewGenerator(s, d, 79)
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := g.Pairs(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := LabelPairs(ex, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range labeled {
		c1, err := ex.Cardinality(lp.Q1)
		if err != nil {
			t.Fatal(err)
		}
		qi, err := lp.Q1.Intersect(lp.Q2)
		if err != nil {
			t.Fatal(err)
		}
		ci, err := ex.Cardinality(qi)
		if err != nil {
			t.Fatal(err)
		}
		got := lp.Rate * float64(c1)
		if diff := got - float64(ci); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("label inconsistent: rate %v · |Q1|=%d != |Q1∩Q2|=%d", lp.Rate, c1, ci)
		}
	}
}

// The pool generator's first-per-clause empty queries guarantee that any
// generated probe finds at least one match with y_rate = 1 — the §5.2
// "always a usable old query" property.
func TestPoolAlwaysHasSupersetAnchor(t *testing.T) {
	d := testDB(t)
	g := NewGenerator(s, d, 80)
	qs, err := g.PoolQueries(60)
	if err != nil {
		t.Fatal(err)
	}
	anchors := make(map[string]query.Query)
	for _, q := range qs {
		if len(q.Preds) == 0 {
			anchors[q.FROMKey()] = q
		}
	}
	probeGen := NewGenerator(s, d, rand.Int63n(1000)+81)
	for joins := 0; joins <= 5; joins++ {
		probe, err := probeGen.InitialQuery(joins)
		if err != nil {
			t.Fatal(err)
		}
		anchor, ok := anchors[probe.FROMKey()]
		if !ok {
			t.Fatalf("no anchor for FROM %q", probe.FROMKey())
		}
		// The anchor has no predicates, so probe ⊆ anchor by construction:
		// probe ∩ anchor == probe.
		qi, err := probe.Intersect(anchor)
		if err != nil {
			t.Fatal(err)
		}
		if !qi.Equal(probe) {
			t.Fatalf("anchor is not a superset: %s vs %s", qi, probe)
		}
	}
}
