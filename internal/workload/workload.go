// Package workload implements the paper's queries generator (§3.1.2) and the
// evaluation workloads of §4.2 and §6.1.
//
// The generator works in three steps:
//
//  1. initial queries: draw a joinable table set (star around `title`), add
//     its join edges, then for each base table draw a uniform number of
//     predicates over its non-key columns with uniform operator and a value
//     drawn from the column's actual values;
//  2. variants: repeatedly perturb an initial query — change predicate
//     operators or values, or add predicates — producing "similar but
//     different" queries whose mutual containment rates vary sharply (the
//     paper's "hard" dataset);
//  3. pairs: combine queries from both steps that share a FROM clause.
//
// A second, deliberately different generator produces the `scale`-style
// workload (§6.1) used to test generalization across generators, and a pool
// generator produces the queries pool QP of §6.2 (equally distributed over
// all possible FROM clauses, with one empty-predicate query per clause so
// every probe finds a usable match, §5.2).
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"crn/internal/db"
	"crn/internal/query"
	"crn/internal/schema"
)

// Oracle is the executor subset workload construction and labeling need:
// exact cardinalities for rejection sampling and labels, exact containment
// rates for pair labels. *exec.Executor satisfies it directly; callers that
// need cancellation pass a context-checking wrapper instead.
type Oracle interface {
	Cardinality(q query.Query) (int64, error)
	ContainmentRate(q1, q2 query.Query) (float64, error)
}

// Pair is an (unlabeled) ordered query pair with identical FROM clauses.
type Pair struct {
	Q1, Q2 query.Query
}

// LabeledPair carries the true containment rate Q1 ⊂% Q2 as a fraction.
type LabeledPair struct {
	Q1, Q2 query.Query
	Rate   float64
}

// LabeledQuery carries a query's true cardinality.
type LabeledQuery struct {
	Q    query.Query
	Card int64
}

// Generator produces random queries over one database following §3.1.2.
// Generators are deterministic given their seed and not safe for concurrent
// use (clone per goroutine instead).
type Generator struct {
	s   *schema.Schema
	d   *db.Database
	rng *rand.Rand

	satellites []string

	// Scale-generator knobs (§6.1): the scale workload comes from "another
	// queries generator"; these bias its distributions away from the
	// training generator's.
	uniformRangeValues bool    // draw predicate values uniformly from [min,max] instead of data rows
	extraPredProb      float64 // probability of one additional predicate per table
	opBias             []string
}

// NewGenerator creates the paper's training/test generator.
func NewGenerator(s *schema.Schema, d *db.Database, seed int64) *Generator {
	return &Generator{
		s:          s,
		d:          d,
		rng:        rand.New(rand.NewSource(seed)),
		satellites: satelliteTables(s),
		opBias:     schema.Operators(),
	}
}

// NewScaleGenerator creates the deliberately different generator behind the
// scale workload: values drawn uniformly from column ranges, an extra
// predicate per table half the time, and range-heavy operators.
func NewScaleGenerator(s *schema.Schema, d *db.Database, seed int64) *Generator {
	g := NewGenerator(s, d, seed)
	g.uniformRangeValues = true
	g.extraPredProb = 0.5
	g.opBias = []string{schema.OpLT, schema.OpGT, schema.OpGT, schema.OpLT, schema.OpEQ}
	return g
}

// satelliteTables returns every table adjacent to the star center `title`.
func satelliteTables(s *schema.Schema) []string {
	var out []string
	for _, t := range s.Tables {
		if t.Name != schema.Title {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// InitialQuery draws a step-1 query with exactly numJoins joins
// (0 ≤ numJoins ≤ number of satellites).
func (g *Generator) InitialQuery(numJoins int) (query.Query, error) {
	if numJoins < 0 || numJoins > len(g.satellites) {
		return query.Query{}, fmt.Errorf("workload: numJoins %d out of range [0,%d]", numJoins, len(g.satellites))
	}
	var tables []string
	if numJoins == 0 {
		tables = []string{g.s.Tables[g.rng.Intn(len(g.s.Tables))].Name}
	} else {
		perm := g.rng.Perm(len(g.satellites))
		tables = []string{schema.Title}
		for _, i := range perm[:numJoins] {
			tables = append(tables, g.satellites[i])
		}
	}
	edges, ok := g.s.SpanningJoins(tables)
	if !ok {
		return query.Query{}, fmt.Errorf("workload: internal error, %v not joinable", tables)
	}
	joins := make([]query.Join, len(edges))
	for i, e := range edges {
		joins[i] = query.Join{Left: e.Left, Right: e.Right}
	}
	var preds []query.Predicate
	for _, t := range tables {
		preds = append(preds, g.tablePredicates(t)...)
	}
	return query.New(g.s, tables, joins, preds)
}

// tablePredicates draws 0..#nonKey predicates on one table (uniform count,
// uniform column/operator, value from the column's data), plus the scale
// generator's optional extra predicate.
func (g *Generator) tablePredicates(table string) []query.Predicate {
	td, _ := g.s.Table(table)
	nonKey := td.NonKeyColumns()
	if len(nonKey) == 0 {
		return nil
	}
	n := g.rng.Intn(len(nonKey) + 1)
	if g.extraPredProb > 0 && g.rng.Float64() < g.extraPredProb && n < len(nonKey) {
		n++
	}
	preds := make([]query.Predicate, 0, n)
	for i := 0; i < n; i++ {
		col := nonKey[g.rng.Intn(len(nonKey))]
		preds = append(preds, query.Predicate{
			Col: schema.ColumnRef{Table: col.Table, Column: col.Name},
			Op:  g.opBias[g.rng.Intn(len(g.opBias))],
			Val: g.drawValue(schema.ColumnRef{Table: col.Table, Column: col.Name}),
		})
	}
	return preds
}

// drawValue picks a predicate literal for the column: a value from an actual
// row (training generator) or uniform over the value range (scale
// generator).
func (g *Generator) drawValue(col schema.ColumnRef) int64 {
	stats, ok := g.d.Stats(col)
	if !ok || stats.NumRows == 0 {
		return 0
	}
	if g.uniformRangeValues {
		if stats.Max <= stats.Min {
			return stats.Min
		}
		return stats.Min + g.rng.Int63n(stats.Max-stats.Min+1)
	}
	colVals := g.d.Table(col.Table).Column(col.Column)
	return colVals[g.rng.Intn(len(colVals))]
}

// Variant derives a step-2 query from q: each predicate may have its
// operator or value mutated (aggressively — only 20% survive untouched, so
// pairs rarely relate by syntactic subsumption alone), and with 50%
// probability one predicate is added. The FROM clause (and hence
// comparability) is preserved.
func (g *Generator) Variant(q query.Query) query.Query {
	out := q.Clone()
	for i := range out.Preds {
		switch r := g.rng.Float64(); {
		case r < 0.4: // mutate operator
			out.Preds[i].Op = schema.Operators()[g.rng.Intn(3)]
		case r < 0.8: // mutate value
			out.Preds[i].Val = g.drawValue(out.Preds[i].Col)
		default: // keep
		}
	}
	if g.rng.Float64() < 0.5 {
		t := out.Tables[g.rng.Intn(len(out.Tables))]
		if extra := g.tablePredicates(t); len(extra) > 0 {
			out = out.WithPredicate(extra[0])
		}
	}
	// Re-canonicalize through the constructor.
	canon, err := query.New(g.s, out.Tables, out.Joins, out.Preds)
	if err != nil {
		// Mutations never invalidate a valid query; fall back defensively.
		return q
	}
	return canon
}

// Pairs runs all three steps to produce `count` unique pairs whose queries
// have exactly `numJoins` joins.
func (g *Generator) Pairs(count, numJoins int) ([]Pair, error) {
	seen := make(map[string]bool)
	var out []Pair
	for attempts := 0; len(out) < count && attempts < count*200; attempts++ {
		initial, err := g.InitialQuery(numJoins)
		if err != nil {
			return nil, err
		}
		// A small family of variants of this initial query.
		family := []query.Query{initial}
		for i := 0; i < 3; i++ {
			family = append(family, g.Variant(initial))
		}
		// Step 3: form pairs within the family (identical FROM clauses).
		for len(out) < count {
			i, j := g.rng.Intn(len(family)), g.rng.Intn(len(family))
			if i == j {
				break
			}
			p := Pair{Q1: family[i], Q2: family[j]}
			key := p.Q1.Key() + "|" + p.Q2.Key()
			if seen[key] {
				break
			}
			seen[key] = true
			out = append(out, p)
			break
		}
	}
	if len(out) < count {
		return nil, fmt.Errorf("workload: exhausted attempts at %d/%d pairs", len(out), count)
	}
	return out, nil
}

// PairsWithJoinDistribution produces pairs according to a per-join-count
// histogram, e.g. {0: 400, 1: 400, 2: 400} for cnt_test1 (paper Table 2).
func (g *Generator) PairsWithJoinDistribution(dist map[int]int) ([]Pair, error) {
	joins := make([]int, 0, len(dist))
	for j := range dist {
		joins = append(joins, j)
	}
	sort.Ints(joins)
	var out []Pair
	for _, j := range joins {
		ps, err := g.Pairs(dist[j], j)
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	return out, nil
}

// Queries produces `count` unique step-1/2 queries with exactly numJoins
// joins — the cardinality-test construction of §6.1 ("we only run the first
// two steps of the generator").
func (g *Generator) Queries(count, numJoins int) ([]query.Query, error) {
	seen := make(map[string]bool)
	var out []query.Query
	for attempts := 0; len(out) < count && attempts < count*200; attempts++ {
		q, err := g.InitialQuery(numJoins)
		if err != nil {
			return nil, err
		}
		if g.rng.Intn(2) == 1 {
			q = g.Variant(q)
		}
		if seen[q.Key()] {
			continue
		}
		seen[q.Key()] = true
		out = append(out, q)
	}
	if len(out) < count {
		return nil, fmt.Errorf("workload: exhausted attempts at %d/%d queries", len(out), count)
	}
	return out, nil
}

// QueriesWithJoinDistribution produces queries according to a per-join-count
// histogram, e.g. {0: 150, 1: 150, 2: 150} for crd_test1 (paper Table 5).
func (g *Generator) QueriesWithJoinDistribution(dist map[int]int) ([]query.Query, error) {
	joins := make([]int, 0, len(dist))
	for j := range dist {
		joins = append(joins, j)
	}
	sort.Ints(joins)
	var out []query.Query
	for _, j := range joins {
		qs, err := g.Queries(dist[j], j)
		if err != nil {
			return nil, err
		}
		out = append(out, qs...)
	}
	return out, nil
}

// NonEmptyQueries draws `count` unique queries with exactly numJoins joins
// whose results are non-empty on the database. The MSCN generator the
// paper's cardinality workloads derive from keeps only queries with
// non-zero cardinality; at our reduced database scale rejection sampling is
// required to match that convention.
func (g *Generator) NonEmptyQueries(ex Oracle, count, numJoins int) ([]query.Query, error) {
	seen := make(map[string]bool)
	var out []query.Query
	for attempts := 0; len(out) < count && attempts < count*500; attempts++ {
		q, err := g.InitialQuery(numJoins)
		if err != nil {
			return nil, err
		}
		if g.rng.Intn(2) == 1 {
			q = g.Variant(q)
		}
		if seen[q.Key()] {
			continue
		}
		seen[q.Key()] = true
		card, err := ex.Cardinality(q)
		if err != nil {
			return nil, err
		}
		if card == 0 {
			continue
		}
		out = append(out, q)
	}
	if len(out) < count {
		return nil, fmt.Errorf("workload: exhausted attempts at %d/%d non-empty queries", len(out), count)
	}
	return out, nil
}

// NonEmptyQueriesWithJoinDistribution is QueriesWithJoinDistribution
// restricted to non-empty results.
func (g *Generator) NonEmptyQueriesWithJoinDistribution(ex Oracle, dist map[int]int) ([]query.Query, error) {
	joins := make([]int, 0, len(dist))
	for j := range dist {
		joins = append(joins, j)
	}
	sort.Ints(joins)
	var out []query.Query
	for _, j := range joins {
		qs, err := g.NonEmptyQueries(ex, dist[j], j)
		if err != nil {
			return nil, err
		}
		out = append(out, qs...)
	}
	return out, nil
}

// PoolQueries builds the queries pool QP of §6.2: n queries equally
// distributed over every possible FROM clause of the schema, the first per
// clause being the empty-predicate query (SELECT * FROM ... WHERE TRUE,
// §5.2) so that every probe has at least one usable old query.
func (g *Generator) PoolQueries(n int) ([]query.Query, error) {
	fromSets := g.s.JoinableSets(g.s.NumTables())
	if len(fromSets) == 0 {
		return nil, fmt.Errorf("workload: schema has no joinable sets")
	}
	seen := make(map[string]bool)
	var out []query.Query
	add := func(q query.Query) {
		if !seen[q.Key()] {
			seen[q.Key()] = true
			out = append(out, q)
		}
	}
	mk := func(tables []string, empty bool) (query.Query, error) {
		edges, _ := g.s.SpanningJoins(tables)
		joins := make([]query.Join, len(edges))
		for i, e := range edges {
			joins[i] = query.Join{Left: e.Left, Right: e.Right}
		}
		var preds []query.Predicate
		if !empty {
			for _, t := range tables {
				preds = append(preds, g.tablePredicates(t)...)
			}
		}
		return query.New(g.s, tables, joins, preds)
	}
	// First pass: one empty-predicate query per FROM clause.
	for _, tables := range fromSets {
		if len(out) >= n {
			break
		}
		q, err := mk(tables, true)
		if err != nil {
			return nil, err
		}
		add(q)
	}
	// Round-robin passes with random predicates until n queries exist.
	for guard := 0; len(out) < n && guard < 1000; guard++ {
		for _, tables := range fromSets {
			if len(out) >= n {
				break
			}
			q, err := mk(tables, false)
			if err != nil {
				return nil, err
			}
			add(q)
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("workload: could not build %d unique pool queries", n)
	}
	return out, nil
}

// NonEmptyPoolQueries is PoolQueries with rejection sampling on the random
// fill: pooled queries with empty results are useless to the Cnt2Crd
// technique (an empty old query anchors nothing), so the pool is built from
// executed queries with non-zero cardinalities. The one empty-predicate
// query per FROM clause is kept unconditionally (it guarantees a usable
// match for every probe, §5.2).
func (g *Generator) NonEmptyPoolQueries(ex Oracle, n int) ([]query.Query, error) {
	candidates, err := g.PoolQueries(n)
	if err != nil {
		return nil, err
	}
	var out []query.Query
	seen := make(map[string]bool)
	keep := func(q query.Query) error {
		if seen[q.Key()] {
			return nil
		}
		card, err := ex.Cardinality(q)
		if err != nil {
			return err
		}
		if card == 0 && len(q.Preds) > 0 {
			return nil
		}
		seen[q.Key()] = true
		out = append(out, q)
		return nil
	}
	for _, q := range candidates {
		if len(out) >= n {
			break
		}
		if err := keep(q); err != nil {
			return nil, err
		}
	}
	// Top up with more generated pool queries until n non-empty ones exist.
	for guard := 0; len(out) < n && guard < 200; guard++ {
		more, err := g.PoolQueries(n)
		if err != nil {
			return nil, err
		}
		for _, q := range more {
			if len(out) >= n {
				break
			}
			if err := keep(q); err != nil {
				return nil, err
			}
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("workload: could not build %d non-empty pool queries", n)
	}
	return out, nil
}

// --- Named workloads -----------------------------------------------------

// CntTest1Dist is the paper's cnt_test1 join distribution (Table 2),
// scaled by the given total (the paper uses 1200).
func CntTest1Dist(total int) map[int]int {
	per := total / 3
	return map[int]int{0: per, 1: per, 2: total - 2*per}
}

// CntTest2Dist is the paper's cnt_test2 join distribution (Table 2).
func CntTest2Dist(total int) map[int]int {
	per := total / 6
	return map[int]int{0: per, 1: per, 2: per, 3: per, 4: per, 5: total - 5*per}
}

// CrdTest1Dist is the paper's crd_test1 join distribution (Table 5).
func CrdTest1Dist(total int) map[int]int {
	per := total / 3
	return map[int]int{0: per, 1: per, 2: total - 2*per}
}

// CrdTest2Dist is the paper's crd_test2 join distribution (Table 5).
func CrdTest2Dist(total int) map[int]int {
	per := total / 6
	return map[int]int{0: per, 1: per, 2: per, 3: per, 4: per, 5: total - 5*per}
}

// ScaleDist is the paper's scale workload join distribution (Table 5:
// 115/115/107/88/75/0 of 500), scaled proportionally to the given total.
func ScaleDist(total int) map[int]int {
	ref := []int{115, 115, 107, 88, 75, 0}
	out := make(map[int]int)
	assigned := 0
	for j, r := range ref {
		n := r * total / 500
		if r > 0 && n == 0 {
			n = 1
		}
		out[j] = n
		assigned += n
	}
	// Distribute rounding remainder over the populated levels.
	for j := 0; assigned < total; j = (j + 1) % 5 {
		out[j]++
		assigned++
	}
	for j := 0; assigned > total && j < 5; j++ {
		if out[j] > 0 {
			out[j]--
			assigned--
		}
	}
	return out
}

// TrainingPairs draws n step-3 pairs with zero to two joins — the paper's
// training regime ("we force the queries generator to create queries with
// up to two joins and let the model generalize", §3.1.2).
func (g *Generator) TrainingPairs(n int) ([]Pair, error) {
	return g.PairsWithJoinDistribution(CntTest1Dist(n))
}

// --- Labeling ------------------------------------------------------------

// LabelPairs executes every pair to obtain true containment rates,
// parallelized over `workers` goroutines (the executor memoizes shared
// sub-queries).
func LabelPairs(ex Oracle, pairs []Pair, workers int) ([]LabeledPair, error) {
	out := make([]LabeledPair, len(pairs))
	err := parallelFor(len(pairs), workers, func(i int) error {
		rate, err := ex.ContainmentRate(pairs[i].Q1, pairs[i].Q2)
		if err != nil {
			return err
		}
		out[i] = LabeledPair{Q1: pairs[i].Q1, Q2: pairs[i].Q2, Rate: rate}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LabelQueries executes every query to obtain true cardinalities.
func LabelQueries(ex Oracle, queries []query.Query, workers int) ([]LabeledQuery, error) {
	out := make([]LabeledQuery, len(queries))
	err := parallelFor(len(queries), workers, func(i int) error {
		card, err := ex.Cardinality(queries[i])
		if err != nil {
			return err
		}
		out[i] = LabeledQuery{Q: queries[i], Card: card}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SplitPairs splits labeled pairs into train/validation sets (the paper
// uses 80/20, §3.1.2) without shuffling; callers shuffle beforehand if the
// order is meaningful.
func SplitPairs(all []LabeledPair, trainFrac float64) (train, val []LabeledPair) {
	k := int(trainFrac * float64(len(all)))
	if k < 0 {
		k = 0
	}
	if k > len(all) {
		k = len(all)
	}
	return all[:k], all[k:]
}

func parallelFor(n, workers int, fn func(i int) error) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if errs[w] == nil {
					errs[w] = fn(i)
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// JoinHistogram tabulates queries per join count, reproducing the paper's
// Tables 2 and 5.
func JoinHistogram(queries []query.Query) map[int]int {
	out := make(map[int]int)
	for _, q := range queries {
		out[q.NumJoins()]++
	}
	return out
}

// PairJoinHistogram tabulates pairs per join count of their (shared) FROM
// clause.
func PairJoinHistogram(pairs []Pair) map[int]int {
	out := make(map[int]int)
	for _, p := range pairs {
		out[p.Q1.NumJoins()]++
	}
	return out
}
