package workload

import (
	"testing"

	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/schema"
)

var s = schema.IMDB()

func testDB(t *testing.T) *db.Database {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 150
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInitialQueryJoinCounts(t *testing.T) {
	g := NewGenerator(s, testDB(t), 1)
	for joins := 0; joins <= 5; joins++ {
		q, err := g.InitialQuery(joins)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumJoins() != joins {
			t.Errorf("joins = %d, want %d (query %s)", q.NumJoins(), joins, q)
		}
		if joins > 0 && q.Tables[len(q.Tables)-1] != schema.Title && q.Tables[0] != schema.Title {
			found := false
			for _, tb := range q.Tables {
				if tb == schema.Title {
					found = true
				}
			}
			if !found {
				t.Errorf("join query lacks title: %v", q.Tables)
			}
		}
	}
	if _, err := g.InitialQuery(6); err == nil {
		t.Error("too many joins should fail")
	}
	if _, err := g.InitialQuery(-1); err == nil {
		t.Error("negative joins should fail")
	}
}

func TestInitialQueryPredicatesAreNonKey(t *testing.T) {
	g := NewGenerator(s, testDB(t), 2)
	for i := 0; i < 100; i++ {
		q, err := g.InitialQuery(i % 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range q.Preds {
			td, _ := s.Table(p.Col.Table)
			for _, c := range td.Columns {
				if c.Name == p.Col.Column && c.Key {
					t.Fatalf("predicate on key column %v", p.Col)
				}
			}
		}
	}
}

func TestVariantPreservesFROM(t *testing.T) {
	g := NewGenerator(s, testDB(t), 3)
	for i := 0; i < 50; i++ {
		q, err := g.InitialQuery(i % 3)
		if err != nil {
			t.Fatal(err)
		}
		v := g.Variant(q)
		if !q.Comparable(v) {
			t.Fatalf("variant changed FROM: %q -> %q", q.FROMKey(), v.FROMKey())
		}
	}
}

func TestVariantsDiffer(t *testing.T) {
	g := NewGenerator(s, testDB(t), 4)
	q, err := g.InitialQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := 0; i < 20; i++ {
		if !g.Variant(q).Equal(q) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("20 variants all identical to the original")
	}
}

func TestPairsUniqueAndComparable(t *testing.T) {
	g := NewGenerator(s, testDB(t), 5)
	pairs, err := g.Pairs(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 60 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := make(map[string]bool)
	for _, p := range pairs {
		if !p.Q1.Comparable(p.Q2) {
			t.Fatalf("pair not comparable: %s | %s", p.Q1, p.Q2)
		}
		if p.Q1.NumJoins() != 1 {
			t.Fatalf("wrong join count: %s", p.Q1)
		}
		key := p.Q1.Key() + "|" + p.Q2.Key()
		if seen[key] {
			t.Fatal("duplicate pair")
		}
		seen[key] = true
	}
}

func TestPairsWithJoinDistribution(t *testing.T) {
	g := NewGenerator(s, testDB(t), 6)
	dist := map[int]int{0: 10, 1: 8, 2: 6}
	pairs, err := g.PairsWithJoinDistribution(dist)
	if err != nil {
		t.Fatal(err)
	}
	hist := PairJoinHistogram(pairs)
	for j, n := range dist {
		if hist[j] != n {
			t.Errorf("join %d: %d pairs, want %d", j, hist[j], n)
		}
	}
}

func TestQueriesWithJoinDistribution(t *testing.T) {
	g := NewGenerator(s, testDB(t), 7)
	dist := map[int]int{0: 12, 2: 5, 4: 3}
	qs, err := g.QueriesWithJoinDistribution(dist)
	if err != nil {
		t.Fatal(err)
	}
	hist := JoinHistogram(qs)
	for j, n := range dist {
		if hist[j] != n {
			t.Errorf("join %d: %d queries, want %d", j, hist[j], n)
		}
	}
	// Uniqueness.
	seen := make(map[string]bool)
	for _, q := range qs {
		if seen[q.Key()] {
			t.Fatal("duplicate query")
		}
		seen[q.Key()] = true
	}
}

func TestDistHelpers(t *testing.T) {
	if d := CntTest1Dist(1200); d[0] != 400 || d[1] != 400 || d[2] != 400 {
		t.Errorf("CntTest1Dist = %v", d)
	}
	if d := CntTest2Dist(1200); d[5] != 200 {
		t.Errorf("CntTest2Dist = %v", d)
	}
	if d := CrdTest1Dist(450); d[0] != 150 {
		t.Errorf("CrdTest1Dist = %v", d)
	}
	if d := CrdTest2Dist(450); d[3] != 75 {
		t.Errorf("CrdTest2Dist = %v", d)
	}
	d := ScaleDist(500)
	if d[0] != 115 || d[1] != 115 || d[2] != 107 || d[3] != 88 || d[4] != 75 || d[5] != 0 {
		t.Errorf("ScaleDist(500) = %v", d)
	}
	total := 0
	for _, n := range ScaleDist(100) {
		total += n
	}
	if total != 100 {
		t.Errorf("ScaleDist(100) sums to %d", total)
	}
}

func TestPoolQueries(t *testing.T) {
	g := NewGenerator(s, testDB(t), 8)
	qs, err := g.PoolQueries(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 80 {
		t.Fatalf("pool queries = %d", len(qs))
	}
	// All 37 joinable FROM clauses covered, each with an empty-predicate
	// query first.
	froms := make(map[string]bool)
	emptyPreds := make(map[string]bool)
	for _, q := range qs {
		froms[q.FROMKey()] = true
		if len(q.Preds) == 0 {
			emptyPreds[q.FROMKey()] = true
		}
	}
	if len(froms) != 37 {
		t.Errorf("FROM coverage = %d, want 37", len(froms))
	}
	for f := range froms {
		if !emptyPreds[f] {
			t.Errorf("FROM %q has no empty-predicate query", f)
		}
	}
}

func TestLabelPairsMatchesExecutor(t *testing.T) {
	d := testDB(t)
	g := NewGenerator(s, d, 9)
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := g.Pairs(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := LabelPairs(ex, pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LabelPairs(ex, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Rate != parallel[i].Rate {
			t.Fatalf("parallel labeling differs at %d", i)
		}
		if serial[i].Rate < 0 || serial[i].Rate > 1 {
			t.Fatalf("rate out of range: %v", serial[i].Rate)
		}
	}
}

func TestLabelQueries(t *testing.T) {
	d := testDB(t)
	g := NewGenerator(s, d, 10)
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.Queries(15, 0)
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := LabelQueries(ex, qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, lq := range labeled {
		want, _ := ex.Cardinality(lq.Q)
		if lq.Card != want {
			t.Fatalf("label %d != executor %d", lq.Card, want)
		}
	}
}

func TestSplitPairs(t *testing.T) {
	all := make([]LabeledPair, 10)
	train, val := SplitPairs(all, 0.8)
	if len(train) != 8 || len(val) != 2 {
		t.Errorf("split = %d/%d", len(train), len(val))
	}
	train, val = SplitPairs(all, 1.5)
	if len(train) != 10 || len(val) != 0 {
		t.Errorf("overflow split = %d/%d", len(train), len(val))
	}
	train, val = SplitPairs(all, -1)
	if len(train) != 0 || len(val) != 10 {
		t.Errorf("negative split = %d/%d", len(train), len(val))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	d := testDB(t)
	g1 := NewGenerator(s, d, 42)
	g2 := NewGenerator(s, d, 42)
	p1, err := g1.Pairs(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g2.Pairs(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i].Q1.Key() != p2[i].Q1.Key() || p1[i].Q2.Key() != p2[i].Q2.Key() {
			t.Fatal("same seed produced different pairs")
		}
	}
	g3 := NewGenerator(s, d, 43)
	p3, err := g3.Pairs(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range p1 {
		if p1[i].Q1.Key() != p3[i].Q1.Key() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical pairs")
	}
}

func TestNonEmptyQueries(t *testing.T) {
	d := testDB(t)
	g := NewGenerator(s, d, 21)
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, joins := range []int{0, 2, 4} {
		qs, err := g.NonEmptyQueries(ex, 12, joins)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != 12 {
			t.Fatalf("joins=%d: got %d queries", joins, len(qs))
		}
		for _, q := range qs {
			card, err := ex.Cardinality(q)
			if err != nil {
				t.Fatal(err)
			}
			if card == 0 {
				t.Fatalf("empty query slipped through: %s", q)
			}
			if q.NumJoins() != joins {
				t.Fatalf("wrong join count %d", q.NumJoins())
			}
		}
	}
	dist := map[int]int{0: 5, 3: 5}
	qs, err := g.NonEmptyQueriesWithJoinDistribution(ex, dist)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("dist queries = %d", len(qs))
	}
}

func TestScaleGeneratorDiffers(t *testing.T) {
	d := testDB(t)
	g := NewScaleGenerator(s, d, 1)
	qs, err := g.Queries(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The scale generator is range-heavy: most predicates should be < or >.
	var rangeOps, eqOps int
	for _, q := range qs {
		for _, p := range q.Preds {
			if p.Op == schema.OpEQ {
				eqOps++
			} else {
				rangeOps++
			}
		}
	}
	if rangeOps <= eqOps {
		t.Errorf("scale generator should be range-heavy: %d range vs %d eq", rangeOps, eqOps)
	}
}

func TestHardPairsHaveVariedRates(t *testing.T) {
	d := testDB(t)
	g := NewGenerator(s, d, 11)
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := g.PairsWithJoinDistribution(map[int]int{0: 40, 1: 30, 2: 20})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := LabelPairs(ex, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The step-2 construction must produce rate diversity: zeros/partial/full.
	var lo, mid, hi int
	for _, lp := range labeled {
		switch {
		case lp.Rate < 0.05:
			lo++
		case lp.Rate > 0.95:
			hi++
		default:
			mid++
		}
	}
	if lo == 0 || mid == 0 || hi == 0 {
		t.Errorf("containment rates not varied: lo=%d mid=%d hi=%d", lo, mid, hi)
	}
}
