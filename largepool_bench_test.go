package crn

// Benchmarks for the production pool scenario of §5.2: the DBMS pools every
// executed query, so a FROM clause accumulates thousands of candidates and
// the Figure 8 loop — one CRN rate pair per candidate — makes per-estimate
// latency linear in pool size. BenchmarkEstimateCardinalityLargePool
// measures a single-query estimate against 1k/10k/50k entries on one FROM
// clause, full scan (k=0) vs signature-indexed top-64 selection. Compare
// with
//
//	go test -bench EstimateCardinalityLargePool -benchtime 5x
//
// ns/op is one single-query request; full/k=64 at a given size is the
// candidate-bound speedup, and k=64 across sizes shows the bounded path's
// latency staying flat as the pool grows. Pool entries carry synthetic
// cardinalities (the arithmetic is identical; only accuracy would need true
// labels, and the accuracy gate lives in internal/experiments).

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// largePoolSizes are the entries-per-FROM-key points of the bench grid.
var largePoolSizes = []int{1000, 10000, 50000}

type largePoolEnv struct {
	full   *CardinalityEstimator // unbounded scan
	topK   *CardinalityEstimator // MaxCandidates = 64, indexed selection
	noIdx  *CardinalityEstimator // MaxCandidates = 64, WithIndexedSelection(false)
	shared *CardinalityEstimator // MaxCandidates = 64, batch-level candidate sharing
	pool   *QueriesPool
	probes []Query
}

var (
	largeMu   sync.Mutex
	largeEnvs = map[int]*largePoolEnv{}
)

// largePoolBenchEnv builds (once per size) a pool with n distinct entries
// on the "title" FROM clause over the shared trained system, plus full-scan
// and top-64 estimators warmed to cache steady state.
func largePoolBenchEnv(b *testing.B, n int) *largePoolEnv {
	b.Helper()
	batchBenchEnv(b) // shared system + trained model
	largeMu.Lock()
	defer largeMu.Unlock()
	if env := largeEnvs[n]; env != nil {
		return env
	}
	ctx := context.Background()
	sys, model := batchSys, batchModel

	p := sys.NewQueriesPool()
	// Deterministic distinct predicate combinations on title's non-key
	// columns; cardinalities are synthetic (1..9973).
	for i := 0; p.Len() < n; i++ {
		var sql string
		switch i % 3 {
		case 0:
			sql = fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", i)
		case 1:
			sql = fmt.Sprintf("SELECT * FROM title WHERE title.kind_id = %d AND title.season_nr < %d",
				i%7, i/7+2)
		default:
			sql = fmt.Sprintf("SELECT * FROM title WHERE title.episode_nr > %d AND title.production_year < %d",
				i, 1900+i%200)
		}
		q, err := sys.ParseQuery(sql)
		if err != nil {
			b.Fatal(err)
		}
		p.Add(q, int64(1+i%9973))
	}
	// Twin pool with the inverted index disabled: the PR 4 linear-scan
	// baseline, kept in the grid so the speedup is measured in-run.
	lin := rebuildPool(sys, p, WithIndexedSelection(false))

	probes := make([]Query, 0, 8)
	for i := 0; i < 8; i++ {
		q, err := sys.ParseQuery(fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d AND title.kind_id = %d",
			1900+13*i, i%7))
		if err != nil {
			b.Fatal(err)
		}
		probes = append(probes, q)
	}

	// Cache capacity above pool size so steady state measures the head
	// pass, not cache churn; fallback covers ε-guard misses on the
	// synthetic pool.
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		b.Fatal(err)
	}
	env := &largePoolEnv{
		full: sys.CardinalityEstimator(model, p,
			WithFallback(base), WithRepCacheSize(2*n+1024)),
		topK: sys.CardinalityEstimator(model, p,
			WithFallback(base), WithRepCacheSize(2*n+1024), WithMaxCandidates(64)),
		noIdx: sys.CardinalityEstimator(model, lin,
			WithFallback(base), WithRepCacheSize(2*n+1024), WithMaxCandidates(64)),
		shared: sys.CardinalityEstimator(model, p,
			WithFallback(base), WithRepCacheSize(2*n+1024), WithMaxCandidates(64),
			WithSharedSelection(true)),
		pool:   p,
		probes: probes,
	}
	// Warm each estimator to resident steady state: sighting, promotion,
	// resident read.
	for _, est := range []*CardinalityEstimator{env.full, env.topK, env.noIdx, env.shared} {
		for pass := 0; pass < 3; pass++ {
			for _, q := range probes {
				if _, err := est.EstimateCardinality(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	largeEnvs[n] = env
	return env
}

// BenchmarkEstimateCardinalityLargePool is the PR 4 acceptance benchmark
// extended for PR 8: per-request latency vs pool size — unbounded scan
// (full), indexed top-64 selection (k=64, the default path), and the same
// bound with the inverted index disabled (k=64-noindex, the PR 4 linear
// baseline). k=64 over k=64-noindex at a given size is the index speedup.
func BenchmarkEstimateCardinalityLargePool(b *testing.B) {
	for _, n := range largePoolSizes {
		for _, label := range []string{"full", "k=64", "k=64-noindex"} {
			b.Run(fmt.Sprintf("entries=%d/%s", n, label), func(b *testing.B) {
				env := largePoolBenchEnv(b, n)
				var est *CardinalityEstimator
				switch label {
				case "full":
					est = env.full
				case "k=64":
					est = env.topK
				default:
					est = env.noIdx
				}
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := est.EstimateCardinality(ctx, env.probes[i%len(env.probes)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEstimateCardinalityLargePoolBatch measures an 8-probe batch
// against the 50k-entry pool with top-64 selection, with and without
// batch-level candidate sharing. ns/op is the whole batch; shared=on
// collapses same-FROM same-pattern probes onto one ranked selection.
func BenchmarkEstimateCardinalityLargePoolBatch(b *testing.B) {
	for _, mode := range []string{"shared=off", "shared=on"} {
		b.Run(fmt.Sprintf("entries=50000/%s", mode), func(b *testing.B) {
			env := largePoolBenchEnv(b, 50000)
			est := env.topK
			if mode == "shared=on" {
				est = env.shared
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateCardinalityBatch(ctx, env.probes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
