package crn

import (
	"time"

	"crn/internal/card"
	icrn "crn/internal/crn"
	"crn/internal/datagen"
	"crn/internal/guard"
	"crn/internal/online"
	"crn/internal/pool"
	"crn/internal/telemetry"
)

// This file defines the functional options of the facade. Options replace
// the zero-value config structs of the original API: call sites state only
// what they change, defaults stay in one place, and new knobs never break
// existing callers.

// --- Opening a database -----------------------------------------------------

// OpenOption configures OpenSynthetic.
type OpenOption func(*datagen.Config)

// WithTitles sets the number of rows in the fact table `title`
// (default 4000); the satellite tables scale with it.
func WithTitles(n int) OpenOption {
	return func(c *datagen.Config) {
		if n > 0 {
			c.Titles = n
		}
	}
}

// WithDataSeed sets the database generation seed (default 1).
func WithDataSeed(seed int64) OpenOption {
	return func(c *datagen.Config) {
		if seed != 0 {
			c.Seed = seed
		}
	}
}

// --- Training ---------------------------------------------------------------

// ModelConfig collects the CRN model and training hyperparameters; see
// DefaultModelConfig for the repository-scale defaults and PaperModelConfig
// for the paper's §3.5 settings.
type ModelConfig = icrn.Config

// DefaultModelConfig returns the repository-scale CRN hyperparameters.
func DefaultModelConfig() ModelConfig { return icrn.DefaultConfig() }

// PaperModelConfig returns the paper's full-scale hyperparameters (§3.5:
// H=512, batch 128, 120 epochs).
func PaperModelConfig() ModelConfig { return icrn.PaperConfig() }

// TrainOption configures TrainContainmentModel.
type TrainOption func(*TrainConfig)

// WithPairs sets the number of training pairs to generate and label
// (default 5000; the paper's §3.1.2 workload uses 0-2 joins).
func WithPairs(n int) TrainOption {
	return func(c *TrainConfig) { c.Pairs = n }
}

// WithSeed sets the workload-generation seed (default 1).
func WithSeed(seed int64) TrainOption {
	return func(c *TrainConfig) { c.Seed = seed }
}

// WithModelConfig overrides the CRN hyperparameters (default
// DefaultModelConfig).
func WithModelConfig(cfg ModelConfig) TrainOption {
	return func(c *TrainConfig) { c.Model = cfg }
}

// WithProgress installs a per-epoch callback (epoch number, validation mean
// q-error). The callback may cancel the training context; the next epoch
// boundary observes it.
func WithProgress(fn func(epoch int, valQError float64)) TrainOption {
	return func(c *TrainConfig) { c.Progress = fn }
}

// WithTrainConfig replaces the whole configuration with a legacy config
// struct.
//
// Deprecated: migrate to the individual options.
func WithTrainConfig(cfg TrainConfig) TrainOption {
	return func(c *TrainConfig) { *c = cfg }
}

// --- Queries pool -----------------------------------------------------------

// PoolOption configures NewQueriesPool.
type PoolOption = pool.Option

// WithPoolCap bounds the queries pool to n entries: once full, recording a
// new executed query evicts the least-recently-matched entry (the pooled
// query estimates have gone longest without selecting). Eviction bumps the
// pool's Version, so the serving representation cache — including its
// pool-resident snapshot — drops stale rows on the next estimate. n <= 0
// leaves the pool unbounded (the default; the paper's §5.2 pool grows with
// the workload).
func WithPoolCap(n int) PoolOption { return pool.WithCap(n) }

// WithIndexedSelection toggles the pool's inverted signature-class index
// behind top-K candidate selection (default on). Indexed selection returns
// exactly the candidates the PR 4 linear scan would — bit-identical scores,
// set and order — while visiting only the signature classes that can still
// beat the current top K, so bounded selection cost depends on the clause's
// predicate-structure diversity instead of its entry count. Clauses too
// diverse to profit (more than one distinct signature pattern per four
// entries at 1024+ entries) automatically fall back to the linear scan;
// PoolStats splits the traffic (IndexHits / IndexFallbacks) and the cost
// (ScannedIndexed / ScannedFallback). Off restores the unconditional linear
// scan — an A/B reference and a memory dial.
func WithIndexedSelection(on bool) PoolOption { return pool.WithIndexedSelection(on) }

// PoolStats reports pool occupancy plus candidate-index and eviction
// counters (see QueriesPool.Stats).
type PoolStats = pool.Stats

// SelectionStats reports batch-level candidate-sharing counters (see
// CardinalityEstimator.SelectionStats and WithSharedSelection).
type SelectionStats = card.SelectionStats

// --- Cardinality estimation -------------------------------------------------

// FinalFunc collapses the per-old-query cardinality estimates into the
// final estimate (the function F of §5.3).
type FinalFunc = pool.FinalFunc

// Final functions of §5.3.1, for WithFinal. The paper found Median best and
// uses it everywhere.
var (
	Median      FinalFunc = pool.Median
	Mean        FinalFunc = pool.Mean
	TrimmedMean FinalFunc = pool.TrimmedMean
)

// estimatorSettings collects everything EstimatorOption values can tune:
// the Figure 8 algorithm knobs on the underlying estimator plus the
// serving-side representation cache, request coalescing, and — for
// AdaptiveEstimator — the online-adaptation configuration.
type estimatorSettings struct {
	est           *card.Estimator
	cacheSize     int
	coalesceBatch int
	coalesceWait  time.Duration
	adapt         online.Config
	dataDir       string
	walSync       string
	ckptRetain    int
	maxInflight   int
	reqTimeout    time.Duration
	breaker       *guard.BreakerConfig
	tel           *telemetry.Telemetry
}

// EstimatorOption configures CardinalityEstimator and ImproveBaseline.
type EstimatorOption func(*estimatorSettings)

// WithWorkers sets the parallelism of the pool scan for rate models without
// a batch interface (0 = GOMAXPROCS, 1 = serial; batch-capable models —
// the CRN included — parallelize internally instead).
func WithWorkers(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.est.Workers = n }
}

// WithFinal sets the final function F collapsing per-old-query estimates
// (default Median, the paper's choice).
func WithFinal(f FinalFunc) EstimatorOption {
	return func(s *estimatorSettings) { s.est.Final = f }
}

// WithFallback sets a fallback estimator for queries without a usable pool
// match; without one such queries fail with ErrNoPoolMatch (§5.2 suggests
// falling back to a basic cardinality model).
func WithFallback(fb BaselineEstimator) EstimatorOption {
	return func(s *estimatorSettings) { s.est.Fallback = fb }
}

// WithEpsilon sets the y_rate guard ε of Figure 8 (default 1e-3): pool
// matches with Qnew ⊂% Qold ≤ ε are skipped to avoid exploding the ratio.
func WithEpsilon(eps float64) EstimatorOption {
	return func(s *estimatorSettings) { s.est.Epsilon = eps }
}

// WithMaxCandidates bounds every estimate's pool scan to the k most
// containment-comparable old queries, selected by the pool's signature
// index (column overlap, operator classes, range intersection; see
// internal/pool.Signature). Estimate latency becomes O(k) in pool size
// instead of O(pool) — the knob that keeps tail latency flat as the §5.2
// deployment pools its whole workload. k = 0 (the default) scans every
// FROM-clause match, the paper's exact algorithm; any k at least the match
// count is bit-identical to the full scan. The paper's Median final
// function is robust to subsetting, so moderate k (64 is a good default at
// 10k+ entry pools) tracks full-scan accuracy closely; see the README's
// "Scaling the queries pool".
func WithMaxCandidates(k int) EstimatorOption {
	return func(s *estimatorSettings) {
		if k < 0 {
			k = 0
		}
		// k = 0 is a real setting (restore the full scan), so a later option
		// must be able to override an earlier bound.
		s.est.MaxCandidates = k
	}
}

// WithSharedSelection deduplicates candidate selection across each batch
// (coalesced or explicit): probes sharing a FROM clause — and, under a
// WithMaxCandidates bound, a predicate-signature pattern — reuse one pool
// selection per batch instead of probing the pool per query. Containment
// rates are still estimated per (probe, candidate) pair. With an unbounded
// scan (MaxCandidates 0) sharing is exact: every probe of a FROM clause
// receives the identical candidate set either way. With a binding bound it
// is an approximation — same-pattern probes with different predicate values
// reuse a top-K ranked for the first probe's values — hence opt-in
// (default off; the Median final function is robust to near-miss candidate
// sets, and SelectionStats reports how often sharing fired).
func WithSharedSelection(on bool) EstimatorOption {
	return func(s *estimatorSettings) { s.est.ShareCandidates = on }
}

// WithRepCacheSize bounds the representation cache of a CRN-backed
// estimator to n entries (default icrn.DefaultRepCacheSize; n <= 0
// disables the cache). The cache memoizes set-module encodings of the
// stable pool entries across requests; see CardinalityEstimator.
func WithRepCacheSize(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.cacheSize = n }
}

// WithoutRepCache disables the representation cache, re-encoding every
// query on every estimate (the pre-cache behavior; useful for equivalence
// testing and memory-constrained deployments).
func WithoutRepCache() EstimatorOption {
	return func(s *estimatorSettings) { s.cacheSize = 0 }
}

// --- Online adaptation (AdaptiveEstimator only) ------------------------------
//
// The options below configure the execution-feedback loop of
// System.AdaptiveEstimator; on a plain CardinalityEstimator or
// ImproveBaseline they are accepted and ignored (those estimators have no
// adaptation machinery).

// WithFeedbackBuffer bounds the staged-feedback buffer to n records
// (default 1024). Once full, further feedback is rejected — counted, not
// queued — until the trainer drains.
func WithFeedbackBuffer(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.adapt.BufferCap = n }
}

// WithRetrainBatch sets how many staged feedback records make a scheduled
// retrain worthwhile (default 16). Drift-triggered retrains ignore the
// floor and run with whatever is staged.
func WithRetrainBatch(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.adapt.MinBatch = n }
}

// WithRetrainInterval sets the background trainer's polling period.
// Zero keeps the default (5s); a negative interval disables scheduled
// retraining — drift kicks and explicit Retrain calls still work.
func WithRetrainInterval(d time.Duration) EstimatorOption {
	return func(s *estimatorSettings) { s.adapt.Interval = d }
}

// WithRetrainEpochs sets the incremental-training budget per retrain cycle
// (default 8 epochs of ContinueTraining on a clone of the live model).
func WithRetrainEpochs(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.adapt.Epochs = n }
}

// WithPromoteTolerance sets the promotion gate: a retrained candidate is
// promoted only when its held-out validation q-error is at most
// (1+tol)× the live model's (default 0.05). Negative tolerance demands
// strict improvement.
func WithPromoteTolerance(tol float64) EstimatorOption {
	return func(s *estimatorSettings) { s.adapt.Tolerance = tol }
}

// WithFeedbackPairs bounds how many pool partners each feedback record is
// paired with when deriving training pairs (default 8; the partners are
// the record's most containment-comparable pool entries).
func WithFeedbackPairs(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.adapt.PairsPerRecord = n }
}

// WithDriftTrigger arms the drift monitor: when the median q-error of live
// estimates against arriving feedback truths over the last window
// observations exceeds threshold, a retrain is kicked ahead of schedule.
// The default (threshold 0) records drift statistics without ever
// triggering.
func WithDriftTrigger(threshold float64, window int) EstimatorOption {
	return func(s *estimatorSettings) {
		s.adapt.DriftThreshold = threshold
		s.adapt.DriftWindow = window
	}
}

// WithLabelFreeFeedback derives containment labels for feedback training
// pairs from the cardinality identity rate(Q1 ⊂% Q2) = |Q1∩Q2|/|Q1|
// whenever all three cardinalities are already known (both queries' truths
// plus the intersection's — free when the intersection collapses onto one
// of the pair, otherwise looked up in the pool), skipping the truth-oracle
// execution for those pairs. Pairs the identity cannot resolve still run
// through the oracle; AdaptationStats reports the split (every label-free
// pair is one oracle execution saved). Default off — the oracle path is the
// paper's exact labeling.
func WithLabelFreeFeedback(on bool) EstimatorOption {
	return func(s *estimatorSettings) { s.adapt.LabelFree = on }
}

// --- Durability (AdaptiveEstimator only) -------------------------------------

// WithDataDir enables durable deployment state under dir (created if
// missing): every accepted feedback record is journaled to a write-ahead
// log before staging, every promotion checkpoints the model generation,
// pool and drift state atomically, and OpenAdaptiveEstimator recovers the
// newest valid checkpoint plus un-checkpointed feedback on boot. Empty dir
// (the default) keeps the deployment memory-only.
func WithDataDir(dir string) EstimatorOption {
	return func(s *estimatorSettings) { s.dataDir = dir }
}

// WithWALSync selects the feedback WAL sync policy: "interval" (default;
// batched background fsync, bounded loss window), "always" (fsync before
// every accepted feedback is acknowledged), or "none" (OS page cache
// decides). Ignored without WithDataDir; an unknown policy fails
// OpenAdaptiveEstimator.
func WithWALSync(policy string) EstimatorOption {
	return func(s *estimatorSettings) { s.walSync = policy }
}

// WithCheckpointRetain keeps the newest n checkpoints on disk (default 3,
// minimum 1); older checkpoints and the WAL segments every retained
// checkpoint fully covers are pruned after each new checkpoint. Ignored
// without WithDataDir.
func WithCheckpointRetain(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.ckptRetain = n }
}

// --- Operational guards -------------------------------------------------------

// WithMaxInflight caps concurrent estimate calls at n: the (n+1)th
// concurrent EstimateCardinality / EstimateCardinalityBatch call is shed
// immediately with ErrOverloaded instead of queueing, so latency under
// overload stays bounded by the admitted work. Shedding happens before the
// coalescer and the estimation pass, so a shed request costs nothing.
// n <= 0 (the default) leaves admission unlimited.
func WithMaxInflight(n int) EstimatorOption {
	return func(s *estimatorSettings) { s.maxInflight = n }
}

// WithRequestTimeout bounds every estimate call to d: the call's context
// gets a deadline, so a slow pass fails with context.DeadlineExceeded (and
// counts against the circuit breaker) instead of holding an admission slot
// indefinitely. d <= 0 (the default) sets no deadline beyond the caller's.
func WithRequestTimeout(d time.Duration) EstimatorOption {
	return func(s *estimatorSettings) { s.reqTimeout = d }
}

// BreakerConfig tunes the estimate-path circuit breaker; see WithBreaker.
// The zero value takes sensible defaults (window 128, error rate 0.5,
// cooldown 5s, probe quota 3, latency trip off).
type BreakerConfig = guard.BreakerConfig

// WithBreaker arms a circuit breaker on the estimate path: when the rolling
// window's error rate or p99 latency crosses its threshold — or the drift
// monitor of an AdaptiveEstimator alarms (cfg.Alarm defaults to it there) —
// the learned path is tripped open and estimates are answered by the
// WithFallback estimator until half-open probes prove recovery. Without a
// fallback, diverted estimates fail with ErrBreakerOpen. A degraded answer
// beats a 500: the breaker never sheds, it reroutes.
func WithBreaker(cfg BreakerConfig) EstimatorOption {
	return func(s *estimatorSettings) { s.breaker = &cfg }
}

// WithTelemetry attaches a telemetry bundle (see NewTelemetry) to the
// estimator: every estimate is decomposed into per-stage latency spans
// (admission → coalesce-wait → cache-lookup → candidate-selection →
// NN-forward → finalize), outcome counters and subsystem collector
// families are registered on the bundle's registry, and every served
// estimate is noted in the live accuracy ring so execution feedback joins
// it into per-arm q-error histograms. Recording costs one atomic add per
// instrument plus a handful of nanosecond clock reads per request; without
// this option the hot path carries no clocks at all. One bundle serves one
// estimator — metric family names are unique per registry.
func WithTelemetry(t *Telemetry) EstimatorOption {
	return func(s *estimatorSettings) { s.tel = t }
}

// WithCoalescing enables request coalescing on EstimateCardinality: up to
// maxBatch concurrent single-query calls are aggregated — deduplicated by
// canonical query key — into one indexed, matrix-batched estimation pass,
// so N in-flight requests pay one pool scan and one head pass instead of N.
// Batch size adapts to load: an isolated request runs immediately, and a
// positive maxWait additionally holds a non-full batch open for stragglers
// (trading tail latency for bigger batches on lightly loaded servers;
// 0 never waits). Coalesced results are bit-identical to uncoalesced calls.
// maxBatch < 2 disables coalescing (the default).
//
// A query that errors fails its whole shared batch, after which every
// member retries alone (correct, but roughly double the uncoalesced cost
// for that batch) — so under coalescing, configure WithFallback unless
// pool misses are known to be impossible; with a fallback, batch-wide
// failures are limited to genuinely exceptional errors.
func WithCoalescing(maxBatch int, maxWait time.Duration) EstimatorOption {
	return func(s *estimatorSettings) {
		s.coalesceBatch = maxBatch
		s.coalesceWait = maxWait
	}
}
