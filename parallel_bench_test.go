package crn

// Benchmarks for the high-concurrency serving hot path: many goroutines
// each issuing single-query EstimateCardinality calls, the traffic shape of
// the §5.2 deployment under load. Run with
//
//	go test -bench EstimateCardinalityParallel -cpu 1,4 -benchtime 5x
//
// BenchmarkEstimateCardinalityParallel serves through the concurrent
// serving configuration (request coalescing on, pool-resident head
// precompute and the sharded representation cache enabled by default);
// BenchmarkEstimateCardinalityParallelNoCoalesce measures the same traffic
// with coalescing disabled, isolating the precompute and sharding wins.
// ns/op is per single-query request, so baseline/new is the per-request
// throughput ratio.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// parallelBenchLoop drives est with single-query calls from pb, spreading
// workers across the workload so concurrent requests are mostly distinct
// queries (the hard case: coalescing may not dedup them away).
func parallelBenchLoop(b *testing.B, pb *testing.PB, est *CardinalityEstimator, queries []Query, next *atomic.Int64) {
	ctx := context.Background()
	for pb.Next() {
		q := queries[int(next.Add(1))%len(queries)]
		if _, err := est.EstimateCardinality(ctx, q); err != nil {
			b.Error(err)
			return
		}
	}
}

// BenchmarkEstimateCardinalityParallel is the concurrent serving
// configuration: single-query requests from 4×GOMAXPROCS goroutines over
// the coalescing estimator.
func BenchmarkEstimateCardinalityParallel(b *testing.B) {
	est, queries := parallelBenchEnv(b)
	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		parallelBenchLoop(b, pb, est, queries, &next)
	})
}

// BenchmarkEstimateCardinalityParallelNoCoalesce is the same traffic served
// without request coalescing — every request runs its own estimate.
func BenchmarkEstimateCardinalityParallelNoCoalesce(b *testing.B) {
	est, queries := batchBenchEnv(b)
	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		parallelBenchLoop(b, pb, est, queries, &next)
	})
}

// BenchmarkEstimateCardinalitySoloCoalesced measures an UNcontended
// coalescing estimator: one request at a time, serially — the traffic shape
// where coalescing used to cost pure overhead (BENCH_3: 6.9µs uncoalesced
// vs 8.3µs coalesced at -cpu 1). The solo fast path must serve every one of
// these calls without batching machinery; the post-run assertion is the
// regression gate.
func BenchmarkEstimateCardinalitySoloCoalesced(b *testing.B) {
	est, queries := parallelBenchEnv(b)
	ctx := context.Background()
	before := est.CoalescerStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateCardinality(ctx, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := est.CoalescerStats()
	if solo := after.Solo - before.Solo; solo < uint64(b.N) {
		b.Fatalf("solo fast path served %d of %d serial requests; the bypass regressed", solo, b.N)
	}
}

// BenchmarkEstimateCardinalityGuarded is BenchmarkEstimateCardinalityParallel
// with the full operational-guard stack armed — admission gate, per-request
// deadline, circuit breaker — on healthy traffic. The delta against the
// unguarded parallel benchmark is the guard overhead on the happy path,
// pinned at <= 5% in CI (BENCH_7); the post-run assertions prove the guards
// stayed out of the way (nothing shed, breaker closed) so the measurement
// really is overhead, not divergence onto the fallback path.
func BenchmarkEstimateCardinalityGuarded(b *testing.B) {
	est, queries := guardedBenchEnv(b)
	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		parallelBenchLoop(b, pb, est, queries, &next)
	})
	b.StopTimer()
	gs := est.GuardStats()
	if gs.Gate.Shed != 0 {
		b.Fatalf("guarded benchmark shed %d requests; raise the ceiling, this must measure the happy path", gs.Gate.Shed)
	}
	if gs.Breaker.State != "closed" || gs.Breaker.Trips != 0 {
		b.Fatalf("breaker left closed state on healthy traffic: %+v", gs.Breaker)
	}
}

// guardedBenchEnv is parallelBenchEnv plus the operational guards at
// serving-realistic settings: a ceiling far above the benchmark's
// concurrency, a deadline far above any single estimate, and a
// default-configured breaker.
func guardedBenchEnv(b *testing.B) (*CardinalityEstimator, []Query) {
	b.Helper()
	batchBenchEnv(b)
	guardedOnce.Do(func() {
		base, err := batchSys.AnalyzeBaseline()
		if err != nil {
			guardedErr = err
			return
		}
		guardedEst = batchSys.CardinalityEstimator(batchModel, batchPool,
			WithFallback(base), WithCoalescing(64, 0),
			WithMaxInflight(4096), WithRequestTimeout(time.Second),
			WithBreaker(BreakerConfig{}))
		ctx := context.Background()
		for i := 0; i < 2; i++ {
			if _, err := guardedEst.EstimateCardinalityBatch(ctx, batchQueries); err != nil {
				guardedErr = err
				return
			}
		}
	})
	if guardedErr != nil {
		b.Fatal(guardedErr)
	}
	return guardedEst, batchQueries
}

var (
	guardedOnce sync.Once
	guardedEst  *CardinalityEstimator
	guardedErr  error
)

// parallelBenchEnv returns the concurrent serving configuration: the same
// trained system and pool as batchBenchEnv, but with request coalescing on
// (as cmd/crnserve configures by default). Precompute and sharding are
// always on — they are properties of the default serving cache.
func parallelBenchEnv(b *testing.B) (*CardinalityEstimator, []Query) {
	b.Helper()
	batchBenchEnv(b) // builds the shared system, pool, and workload
	coalescedOnce.Do(func() {
		base, err := batchSys.AnalyzeBaseline()
		if err != nil {
			coalescedErr = err
			return
		}
		coalescedEst = batchSys.CardinalityEstimator(batchModel, batchPool,
			WithFallback(base), WithCoalescing(64, 0))
		// Warm the serving cache to steady state (entries promoted to the
		// resident tier on their second sighting).
		ctx := context.Background()
		for i := 0; i < 2; i++ {
			if _, err := coalescedEst.EstimateCardinalityBatch(ctx, batchQueries); err != nil {
				coalescedErr = err
				return
			}
		}
	})
	if coalescedErr != nil {
		b.Fatal(coalescedErr)
	}
	return coalescedEst, batchQueries
}

var (
	coalescedOnce sync.Once
	coalescedEst  *CardinalityEstimator
	coalescedErr  error
)

// BenchmarkEstimateCardinalityTelemetry is BenchmarkEstimateCardinalityParallel
// with the full telemetry bundle armed — per-request stage timing, outcome
// counters, latency histograms, accuracy ring. The delta against the
// uninstrumented parallel benchmark is the telemetry overhead on the hot
// path, pinned at <= 3% in CI (BENCH_10).
func BenchmarkEstimateCardinalityTelemetry(b *testing.B) {
	est, queries := telemetryBenchEnv(b)
	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		parallelBenchLoop(b, pb, est, queries, &next)
	})
	b.StopTimer()
	if n := telemetryBench.E2E.Snapshot().Total(); n == 0 {
		b.Fatal("telemetry recorded nothing; the benchmark measured the uninstrumented path")
	}
}

// telemetryBenchEnv is parallelBenchEnv's configuration plus WithTelemetry.
func telemetryBenchEnv(b *testing.B) (*CardinalityEstimator, []Query) {
	b.Helper()
	batchBenchEnv(b)
	telemetryOnce.Do(func() {
		base, err := batchSys.AnalyzeBaseline()
		if err != nil {
			telemetryErr = err
			return
		}
		telemetryBench = NewTelemetry()
		telemetryEst = batchSys.CardinalityEstimator(batchModel, batchPool,
			WithFallback(base), WithCoalescing(64, 0), WithTelemetry(telemetryBench))
		ctx := context.Background()
		for i := 0; i < 2; i++ {
			if _, err := telemetryEst.EstimateCardinalityBatch(ctx, batchQueries); err != nil {
				telemetryErr = err
				return
			}
		}
	})
	if telemetryErr != nil {
		b.Fatal(telemetryErr)
	}
	return telemetryEst, batchQueries
}

var (
	telemetryOnce  sync.Once
	telemetryEst   *CardinalityEstimator
	telemetryBench *Telemetry
	telemetryErr   error
)
