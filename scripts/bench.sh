#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-10 baseline) in BENCH_10.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries
# (except `go run ./cmd/crndiag -kernels` to ask which kernel ISA package nn
# dispatched, which decides whether the SIMD gate applies).
#
# The concurrent serving benchmarks run at -cpu 1,4 (the parallel
# single-query throughput point of PR 3), so their names keep the -N
# GOMAXPROCS suffix; every other benchmark records under its bare name. The
# large-pool benchmarks run at 20 iterations (a full-scan iteration at 50k
# entries costs tens of milliseconds).
#
# PR 10 additions:
#   - EstimateCardinalityTelemetry: the parallel serving point with the full
#     telemetry bundle armed (stage timers, outcome counters, latency
#     histograms, accuracy ring).
#   - Telemetry gate: telemetry-on must cost at most 3% over telemetry-off
#     on the parallel serving point (min of 3 each, same noise policy as the
#     guard gate).
#   - Stage-latency breakdown: BenchmarkServeStages drives the full HTTP
#     estimate path and dumps per-stage latency quantiles via
#     CRN_STAGE_REPORT; the JSON lands under "stage_latency" in the output.
#
# PR 9 gates (kept): dispatched MatMul128 >= 2x the noasm build when the
# host dispatched avx2+fma; binary batch codec allocs <= 20% of JSON.
# PR 8 gate (kept): indexed candidate selection >= 5x the linear scan at 50k
# entries, <= 5% over it at 1k. PR 7 gate (kept): guard overhead <= 5% on
# the parallel serving point.
#
# The frozen baseline below is the PR 9 code measured on this machine
# (BENCH_9.json results). EstimateCardinalityTelemetry did not exist before
# PR 10 — its in-run reference is EstimateCardinalityParallel-4.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_10.json}"
RAW="$(mktemp)"
KERN_RAW="$(mktemp)"
NOASM_RAW="$(mktemp)"
WIRE_RAW="$(mktemp)"
GATE_RAW="$(mktemp)"
IDX_RAW="$(mktemp)"
TEL_RAW="$(mktemp)"
STAGE_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$KERN_RAW" "$NOASM_RAW" "$WIRE_RAW" "$GATE_RAW" "$IDX_RAW" "$TEL_RAW" "$STAGE_RAW"' EXIT

# min_rows: collapse a -count N benchmark run to one row per benchmark name,
# keeping the row with the minimum ns/op. On a shared single-core machine
# the minimum is the least-perturbed sample; means drag scheduler noise in.
min_rows() {
  awk '
    /^Benchmark/ {
      ns = ""
      for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") ns = $i + 0
      if (ns == "") next
      if (!($1 in bestns)) { order[++n] = $1 }
      if (!($1 in bestns) || ns < bestns[$1]) { bestns[$1] = ns; best[$1] = $0 }
    }
    END { for (i = 1; i <= n; i++) print best[order[i]] }
  ' "$1"
}

echo "== nn kernel benchmarks (min of 5) ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x -count 5 | tee "$KERN_RAW" >&2
min_rows "$KERN_RAW" >> "$RAW"
echo "== noasm kernel reference (generic Go loops, min of 5) ==" >&2
go test -tags noasm ./internal/nn -run '^$' -bench 'MatMul128$' -benchmem -benchtime 50x -count 5 \
  | sed 's/^BenchmarkMatMul128\b/BenchmarkMatMul128Noasm/' | tee "$NOASM_RAW" >&2
min_rows "$NOASM_RAW" >> "$RAW"
echo "== wire codec benchmarks (binary frame vs JSON, 64-query batch) ==" >&2
go test ./internal/wire -run '^$' -bench 'BatchWire' -benchmem -benchtime 1000x -count 3 | tee "$WIRE_RAW" >&2
min_rows "$WIRE_RAW" >> "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== concurrent serving benchmarks (coalescing + solo bypass + guards + telemetry, -cpu 1,4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel|SoloCoalesced|Guarded|Telemetry)' -cpu 1,4 -benchmem -benchtime 2s | tee -a "$RAW"
echo "== large-pool benchmarks (indexed vs linear top-K vs full scan, batch sharing) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== saturated-pool eviction benchmarks (lazy min-heap vs linear scan) ==" >&2
go test ./internal/pool -run '^$' -bench 'AddSaturated' -benchmem -benchtime 100x | tee -a "$RAW"
echo "== feedback-loop benchmarks (trainer idle vs active, -cpu 4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityTrainer' -cpu 4 -benchmem -benchtime 4s | tee -a "$RAW"
echo "== durability benchmarks (WAL append per policy, recovery replay) ==" >&2
go test ./internal/durable -run '^$' -bench 'WALAppend|RecoveryReplay' -benchmem -benchtime 200x | tee -a "$RAW"
echo "== durable feedback-path benchmarks (WAL overhead on ingestion) ==" >&2
go test . -run '^$' -bench 'RecordFeedback' -benchmem -benchtime 2000x | tee -a "$RAW"

# The PR 9 kernel gate: the dispatched SIMD matmul against the generic
# build, both already min-of-5 in $RAW. Only meaningful when package nn
# actually selected the vector kernels — on generic hosts (no AVX2/FMA,
# noasm builds, CRN_NOSIMD) the two rows measure the same code, so skip.
echo "== SIMD kernel gate (dispatched vs noasm MatMul128, min of 5) ==" >&2
ISA="$(go run ./cmd/crndiag -kernels)"
if [ "$ISA" = "avx2+fma" ]; then
  awk '
    $1 == "BenchmarkMatMul128"      { if (!s || $3 + 0 < s) s = $3 + 0 }
    $1 == "BenchmarkMatMul128Noasm" { if (!g || $3 + 0 < g) g = $3 + 0 }
    END {
      if (!s || !g) {
        print "kernel gate: missing benchmark results" > "/dev/stderr"; exit 1
      }
      printf "SIMD matmul speedup: %.2fx (avx2+fma min %d ns/op vs noasm min %d ns/op)\n", g / s, s, g > "/dev/stderr"
      if (s * 2 > g) {
        print "kernel gate FAILED: dispatched MatMul128 < 2x the noasm build" > "/dev/stderr"; exit 1
      }
    }
  ' "$RAW"
else
  echo "kernel gate SKIPPED: dispatched ISA is '$ISA', nothing to compare" >&2
fi

# The PR 9 wire gate: the binary batch codec must allocate at most 20% of
# the JSON codec per 64-query batch. Allocation counts are deterministic,
# so no min-taking subtlety here — the min_rows pass already left one row
# per codec.
echo "== wire allocation gate (binary <= 20% of JSON allocs/op) ==" >&2
awk '
  $1 ~ /^BenchmarkBatchWire\/codec=json(-[0-9]+)?$/   { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") j = $i + 0 }
  $1 ~ /^BenchmarkBatchWire\/codec=binary(-[0-9]+)?$/ { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") b = $i + 0 }
  END {
    if (j == "" || b == "") {
      print "wire gate: missing benchmark results" > "/dev/stderr"; exit 1
    }
    printf "wire allocs per 64-query batch: binary %d vs json %d (%.1f%%)\n", b, j, b * 100 / j > "/dev/stderr"
    if (b * 5 > j) {
      print "wire gate FAILED: binary allocs > 20% of JSON" > "/dev/stderr"; exit 1
    }
  }
' "$RAW"

# The PR 7 acceptance gate: guard overhead on the parallel serving point.
# A dedicated -count 3 run comparing MINIMA — single-iteration deltas on a
# shared machine swing +-20% from scheduler noise; the minimum of three is
# the least-perturbed measurement of each side.
echo "== guard-overhead gate (guarded vs unguarded, min of 3) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel$|Guarded)' -cpu 4 -benchtime 2s -count 3 | tee "$GATE_RAW" >&2
awk '
  $1 == "BenchmarkEstimateCardinalityParallel-4" { if (!u || $3 + 0 < u) u = $3 + 0 }
  $1 == "BenchmarkEstimateCardinalityGuarded-4"  { if (!g || $3 + 0 < g) g = $3 + 0 }
  END {
    if (!u || !g) {
      print "guard-overhead gate: missing benchmark results" > "/dev/stderr"; exit 1
    }
    pct = (g / u - 1) * 100
    printf "guard overhead at -cpu 4: %.1f%% (guarded min %d ns/op vs unguarded min %d ns/op)\n", pct, g, u > "/dev/stderr"
    if (g > u * 1.05) {
      print "guard-overhead gate FAILED: > 5%" > "/dev/stderr"; exit 1
    }
  }
' "$GATE_RAW"

# The PR 10 acceptance gate: telemetry overhead on the parallel serving
# point — the fully instrumented estimator (stage timers, counters, latency
# histograms, accuracy ring) against the uninstrumented one, min of 3 each.
echo "== telemetry-overhead gate (instrumented vs bare, min of 3) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel$|Telemetry)' -cpu 4 -benchtime 2s -count 3 | tee "$TEL_RAW" >&2
awk '
  $1 == "BenchmarkEstimateCardinalityParallel-4"  { if (!u || $3 + 0 < u) u = $3 + 0 }
  $1 == "BenchmarkEstimateCardinalityTelemetry-4" { if (!t || $3 + 0 < t) t = $3 + 0 }
  END {
    if (!u || !t) {
      print "telemetry-overhead gate: missing benchmark results" > "/dev/stderr"; exit 1
    }
    pct = (t / u - 1) * 100
    printf "telemetry overhead at -cpu 4: %.1f%% (instrumented min %d ns/op vs bare min %d ns/op)\n", pct, t, u > "/dev/stderr"
    if (t > u * 1.03) {
      print "telemetry-overhead gate FAILED: > 3%" > "/dev/stderr"; exit 1
    }
  }
' "$TEL_RAW"

# The PR 8 acceptance gate: indexed candidate selection vs the linear scan,
# measured in the same run on the same pools (min of 3, same noise
# rationale as above). At 50k entries the index must win by at least 5x; at
# 1k entries — where classes are few and the linear scan is already cheap —
# it must not regress the linear scan by more than 5%. The entries= segments are anchored so
# entries=1000 does not also match entries=10000, and the k=64 minima only
# accept a trailing GOMAXPROCS suffix so they never swallow k=64-noindex.
echo "== index-selection gate (indexed vs linear top-64, min of 3) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool$/entries=(1000|50000)$/k=64' -benchtime 20x -count 3 | tee "$IDX_RAW" >&2
awk '
  $1 ~ /entries=1000\/k=64(-[0-9]+)?$/           { if (!i1  || $3 + 0 < i1)  i1  = $3 + 0 }
  $1 ~ /entries=1000\/k=64-noindex(-[0-9]+)?$/   { if (!n1  || $3 + 0 < n1)  n1  = $3 + 0 }
  $1 ~ /entries=50000\/k=64(-[0-9]+)?$/          { if (!i50 || $3 + 0 < i50) i50 = $3 + 0 }
  $1 ~ /entries=50000\/k=64-noindex(-[0-9]+)?$/  { if (!n50 || $3 + 0 < n50) n50 = $3 + 0 }
  END {
    if (!i1 || !n1 || !i50 || !n50) {
      print "index-selection gate: missing benchmark results" > "/dev/stderr"; exit 1
    }
    printf "index speedup at 50k entries: %.1fx (indexed min %d ns/op vs linear min %d ns/op)\n", n50 / i50, i50, n50 > "/dev/stderr"
    printf "index delta at 1k entries: %.1f%% (indexed min %d ns/op vs linear min %d ns/op)\n", (i1 / n1 - 1) * 100, i1, n1 > "/dev/stderr"
    if (i50 * 5 > n50) {
      print "index-selection gate FAILED: < 5x at 50k entries" > "/dev/stderr"; exit 1
    }
    if (i1 > n1 * 1.05) {
      print "index-selection gate FAILED: > 5% regression at 1k entries" > "/dev/stderr"; exit 1
    }
  }
' "$IDX_RAW"

# The PR 10 stage-latency breakdown: BenchmarkServeStages drives the full
# HTTP estimate path (mux, JSON codec, gate, coalescer, estimator) and
# dumps per-stage latency quantiles from the telemetry histograms via
# CRN_STAGE_REPORT. The report is embedded verbatim under "stage_latency".
echo "== stage-latency breakdown (HTTP estimate path under parallel load) ==" >&2
CRN_STAGE_REPORT="$STAGE_RAW" go test ./cmd/crnserve -run '^$' -bench 'ServeStages' -benchtime 2s >&2
sed 's/^/  /' "$STAGE_RAW" >&2

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON. The
# GOMAXPROCS suffix is meaningful for the Parallel/Solo/Trainer/Guarded/
# Telemetry benchmarks (run at explicit -cpu settings) and stripped
# everywhere else.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    if (name !~ /Parallel|Solo|Trainer|Guarded|Telemetry/) sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

STAGES="$(sed 's/^/  /' "$STAGE_RAW")"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"
ISA="$(go run ./cmd/crndiag -kernels)"

cat > "$OUT" <<EOF
{
  "pr": 10,
  "description": "Production telemetry layer: lock-free metrics registry, per-stage hot-path timing, Prometheus exposition, and live accuracy (q-error) tracking",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "kernel_isa": "$ISA",
  "baseline_commit": "d415ff5",
  "baseline": {
    "_comment": "pre-PR-10 measurements on the same machine: BENCH_9.json results. Noise policy unchanged since PR 9: the nn-kernel, noasm-reference and wire-codec rows record the MINIMUM over repeated runs (-count 5 kernels, -count 3 wire) — the minimum is the least scheduler-perturbed sample; compare minima to minima, never a min to a historic single sample. EstimateCardinalityTelemetry is new in PR 10; its reference is EstimateCardinalityParallel-4 measured in the same run (gate: instrumented <= 1.03x bare). The stage_latency section is also new: per-stage latency quantiles of the full HTTP estimate path from the telemetry histograms themselves.",
    "MatMul128": {"ns_per_op": 188840, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMulBatchForward": {"ns_per_op": 241157, "bytes_per_op": 0, "allocs_per_op": 0},
    "DenseForwardBackward": {"ns_per_op": 749993, "bytes_per_op": 196704, "allocs_per_op": 4},
    "SetEncoderForward": {"ns_per_op": 232811, "bytes_per_op": 196704, "allocs_per_op": 4},
    "AdamStep": {"ns_per_op": 447036, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMul128Noasm": {"ns_per_op": 580624, "bytes_per_op": 0, "allocs_per_op": 0},
    "BatchWire/codec=json": {"ns_per_op": 47738, "bytes_per_op": 16240, "allocs_per_op": 143},
    "BatchWire/codec=binary": {"ns_per_op": 3173, "bytes_per_op": 7322, "allocs_per_op": 3},
    "TrainEpoch": {"ns_per_op": 60494339, "bytes_per_op": 677825, "allocs_per_op": 159},
    "PredictBatch": {"ns_per_op": 1857981, "bytes_per_op": 217635, "allocs_per_op": 4},
    "PredictShared": {"ns_per_op": 5690622, "bytes_per_op": 449401, "allocs_per_op": 19},
    "EstimateCardinalityBatch64": {"ns_per_op": 189756, "bytes_per_op": 131072, "allocs_per_op": 122},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 314421, "bytes_per_op": 144064, "allocs_per_op": 842},
    "EstimateCardinalityParallel": {"ns_per_op": 6701, "bytes_per_op": 2348, "allocs_per_op": 14},
    "EstimateCardinalityParallel-4": {"ns_per_op": 8204, "bytes_per_op": 2393, "allocs_per_op": 11},
    "EstimateCardinalityParallelNoCoalesce": {"ns_per_op": 8292, "bytes_per_op": 2251, "allocs_per_op": 13},
    "EstimateCardinalityParallelNoCoalesce-4": {"ns_per_op": 10474, "bytes_per_op": 2251, "allocs_per_op": 13},
    "EstimateCardinalitySoloCoalesced": {"ns_per_op": 8383, "bytes_per_op": 2347, "allocs_per_op": 14},
    "EstimateCardinalitySoloCoalesced-4": {"ns_per_op": 7069, "bytes_per_op": 2347, "allocs_per_op": 14},
    "EstimateCardinalityGuarded": {"ns_per_op": 9543, "bytes_per_op": 2349, "allocs_per_op": 14},
    "EstimateCardinalityGuarded-4": {"ns_per_op": 12075, "bytes_per_op": 2397, "allocs_per_op": 11},
    "EstimateCardinalityLargePool/entries=1000/full": {"ns_per_op": 869545, "bytes_per_op": 350040, "allocs_per_op": 27},
    "EstimateCardinalityLargePool/entries=1000/k=64": {"ns_per_op": 62290, "bytes_per_op": 31936, "allocs_per_op": 30},
    "EstimateCardinalityLargePool/entries=1000/k=64-noindex": {"ns_per_op": 94411, "bytes_per_op": 31760, "allocs_per_op": 26},
    "EstimateCardinalityLargePool/entries=10000/full": {"ns_per_op": 9541517, "bytes_per_op": 3480584, "allocs_per_op": 62},
    "EstimateCardinalityLargePool/entries=10000/k=64": {"ns_per_op": 64511, "bytes_per_op": 31936, "allocs_per_op": 30},
    "EstimateCardinalityLargePool/entries=10000/k=64-noindex": {"ns_per_op": 678879, "bytes_per_op": 31760, "allocs_per_op": 26},
    "EstimateCardinalityLargePool/entries=50000/full": {"ns_per_op": 52702463, "bytes_per_op": 17154952, "allocs_per_op": 164},
    "EstimateCardinalityLargePool/entries=50000/k=64": {"ns_per_op": 244211, "bytes_per_op": 31936, "allocs_per_op": 30},
    "EstimateCardinalityLargePool/entries=50000/k=64-noindex": {"ns_per_op": 3066531, "bytes_per_op": 31760, "allocs_per_op": 26},
    "EstimateCardinalityLargePoolBatch/entries=50000/shared=off": {"ns_per_op": 354325, "bytes_per_op": 244496, "allocs_per_op": 93},
    "EstimateCardinalityLargePoolBatch/entries=50000/shared=on": {"ns_per_op": 276766, "bytes_per_op": 118688, "allocs_per_op": 58},
    "AddSaturated/entries=1000": {"ns_per_op": 747.7, "bytes_per_op": 344, "allocs_per_op": 9},
    "AddSaturated/entries=10000": {"ns_per_op": 5049, "bytes_per_op": 344, "allocs_per_op": 9},
    "AddSaturated/entries=50000": {"ns_per_op": 4684, "bytes_per_op": 344, "allocs_per_op": 9},
    "AddSaturatedWithSelection": {"ns_per_op": 10325, "bytes_per_op": 2661, "allocs_per_op": 10},
    "EstimateCardinalityTrainerIdle-4": {"ns_per_op": 6906, "bytes_per_op": 2393, "allocs_per_op": 11},
    "EstimateCardinalityTrainerActive-4": {"ns_per_op": 7708, "bytes_per_op": 2761, "allocs_per_op": 11},
    "WALAppend/none": {"ns_per_op": 6074, "bytes_per_op": 610, "allocs_per_op": 4},
    "WALAppend/interval": {"ns_per_op": 4638, "bytes_per_op": 586, "allocs_per_op": 4},
    "WALAppend/always": {"ns_per_op": 260146, "bytes_per_op": 168, "allocs_per_op": 4},
    "RecoveryReplay": {"ns_per_op": 2150693, "bytes_per_op": 3765310, "allocs_per_op": 20043},
    "RecordFeedbackMemory": {"ns_per_op": 10001, "bytes_per_op": 5014, "allocs_per_op": 19},
    "RecordFeedbackDurable": {"ns_per_op": 10521, "bytes_per_op": 5452, "allocs_per_op": 21},
    "RecordFeedbackDurableAlways": {"ns_per_op": 248326, "bytes_per_op": 5110, "allocs_per_op": 21}
  },
  "stage_latency":
$STAGES,
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
