#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-8 baseline) in BENCH_8.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries.
#
# The concurrent serving benchmarks run at -cpu 1,4 (the parallel
# single-query throughput point of PR 3), so their names keep the -N
# GOMAXPROCS suffix; every other benchmark records under its bare name. The
# large-pool benchmarks run at 20 iterations (a full-scan iteration at 50k
# entries costs tens of milliseconds).
#
# PR 8 additions:
#   - EstimateCardinalityLargePool/.../k=64-noindex: the bounded top-64
#     selection with the inverted signature index disabled — the PR 4
#     linear-scan baseline measured in-run, on the same machine, same
#     entries. k=64 against k=64-noindex at a given size is the index
#     speedup.
#   - EstimateCardinalityLargePoolBatch/entries=50000/shared={off,on}: an
#     8-probe batch with and without batch-level candidate sharing.
#   - Index gate (the PR 8 acceptance gate, min of 3): FAILS unless indexed
#     selection at 50k entries is at least 5x faster than the in-run linear
#     baseline, or if indexed selection at 1k entries regresses more than 5%
#     against the linear scan there (small pools gain little from the
#     index; they must not pay for it).
#
# PR 7 gate (kept): EstimateCardinalityGuarded-4 must stay within 5% of
# EstimateCardinalityParallel-4 (guard overhead on the happy path).
#
# The frozen baseline below is the PR 7 code measured on this machine
# (BENCH_7.json results). The k=64-noindex and LargePoolBatch benchmarks did
# not exist before PR 8; the baseline k=64 rows — which ran the linear
# scan — are their reference points.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_8.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== nn kernel benchmarks ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x | tee -a "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== concurrent serving benchmarks (coalescing + solo bypass + guards, -cpu 1,4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel|SoloCoalesced|Guarded)' -cpu 1,4 -benchmem -benchtime 2s | tee -a "$RAW"
echo "== large-pool benchmarks (indexed vs linear top-K vs full scan, batch sharing) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== saturated-pool eviction benchmarks (lazy min-heap vs linear scan) ==" >&2
go test ./internal/pool -run '^$' -bench 'AddSaturated' -benchmem -benchtime 100x | tee -a "$RAW"
echo "== feedback-loop benchmarks (trainer idle vs active, -cpu 4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityTrainer' -cpu 4 -benchmem -benchtime 4s | tee -a "$RAW"
echo "== durability benchmarks (WAL append per policy, recovery replay) ==" >&2
go test ./internal/durable -run '^$' -bench 'WALAppend|RecoveryReplay' -benchmem -benchtime 200x | tee -a "$RAW"
echo "== durable feedback-path benchmarks (WAL overhead on ingestion) ==" >&2
go test . -run '^$' -bench 'RecordFeedback' -benchmem -benchtime 2000x | tee -a "$RAW"

# The PR 7 acceptance gate: guard overhead on the parallel serving point.
# A dedicated -count 3 run comparing MINIMA — single-iteration deltas on a
# shared machine swing +-20% from scheduler noise; the minimum of three is
# the least-perturbed measurement of each side.
echo "== guard-overhead gate (guarded vs unguarded, min of 3) ==" >&2
GATE_RAW="$(mktemp)"
IDX_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$GATE_RAW" "$IDX_RAW"' EXIT
go test . -run '^$' -bench 'EstimateCardinality(Parallel$|Guarded)' -cpu 4 -benchtime 2s -count 3 | tee "$GATE_RAW" >&2
awk '
  $1 == "BenchmarkEstimateCardinalityParallel-4" { if (!u || $3 + 0 < u) u = $3 + 0 }
  $1 == "BenchmarkEstimateCardinalityGuarded-4"  { if (!g || $3 + 0 < g) g = $3 + 0 }
  END {
    if (!u || !g) {
      print "guard-overhead gate: missing benchmark results" > "/dev/stderr"; exit 1
    }
    pct = (g / u - 1) * 100
    printf "guard overhead at -cpu 4: %.1f%% (guarded min %d ns/op vs unguarded min %d ns/op)\n", pct, g, u > "/dev/stderr"
    if (g > u * 1.05) {
      print "guard-overhead gate FAILED: > 5%" > "/dev/stderr"; exit 1
    }
  }
' "$GATE_RAW"

# The PR 8 acceptance gate: indexed candidate selection vs the linear scan,
# measured in the same run on the same pools (min of 3, same noise
# rationale as above). At 50k entries the index must win by at least 5x; at
# 1k entries — where classes are few and the linear scan is already cheap —
# it must not regress the linear scan by more than 5%. The entries= segments are anchored so
# entries=1000 does not also match entries=10000, and the k=64 minima only
# accept a trailing GOMAXPROCS suffix so they never swallow k=64-noindex.
echo "== index-selection gate (indexed vs linear top-64, min of 3) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool$/entries=(1000|50000)$/k=64' -benchtime 20x -count 3 | tee "$IDX_RAW" >&2
awk '
  $1 ~ /entries=1000\/k=64(-[0-9]+)?$/           { if (!i1  || $3 + 0 < i1)  i1  = $3 + 0 }
  $1 ~ /entries=1000\/k=64-noindex(-[0-9]+)?$/   { if (!n1  || $3 + 0 < n1)  n1  = $3 + 0 }
  $1 ~ /entries=50000\/k=64(-[0-9]+)?$/          { if (!i50 || $3 + 0 < i50) i50 = $3 + 0 }
  $1 ~ /entries=50000\/k=64-noindex(-[0-9]+)?$/  { if (!n50 || $3 + 0 < n50) n50 = $3 + 0 }
  END {
    if (!i1 || !n1 || !i50 || !n50) {
      print "index-selection gate: missing benchmark results" > "/dev/stderr"; exit 1
    }
    printf "index speedup at 50k entries: %.1fx (indexed min %d ns/op vs linear min %d ns/op)\n", n50 / i50, i50, n50 > "/dev/stderr"
    printf "index delta at 1k entries: %.1f%% (indexed min %d ns/op vs linear min %d ns/op)\n", (i1 / n1 - 1) * 100, i1, n1 > "/dev/stderr"
    if (i50 * 5 > n50) {
      print "index-selection gate FAILED: < 5x at 50k entries" > "/dev/stderr"; exit 1
    }
    if (i1 > n1 * 1.05) {
      print "index-selection gate FAILED: > 5% regression at 1k entries" > "/dev/stderr"; exit 1
    }
  }
' "$IDX_RAW"

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON. The
# GOMAXPROCS suffix is meaningful for the Parallel/Solo/Trainer/Guarded
# benchmarks (run at explicit -cpu settings) and stripped everywhere else.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    if (name !~ /Parallel|Solo|Trainer|Guarded/) sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "pr": 8,
  "description": "Sublinear candidate retrieval: inverted signature index with upper-bound pruning and density fallback, split indexed/fallback scan counters, batch-level candidate sharing",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "baseline_commit": "e030e4c",
  "baseline": {
    "_comment": "pre-PR-8 measurements on the same machine: BENCH_7.json results. The k=64-noindex and LargePoolBatch benchmarks are new in PR 8; the baseline LargePool k=64 rows ran the linear scan and are their reference (gates: indexed >= 5x linear at 50k, <= 5% over linear at 1k).",
    "MatMul128": {"ns_per_op": 721865, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMulBatchForward": {"ns_per_op": 1254503, "bytes_per_op": 0, "allocs_per_op": 0},
    "DenseForwardBackward": {"ns_per_op": 2312943, "bytes_per_op": 196704, "allocs_per_op": 4},
    "SetEncoderForward": {"ns_per_op": 846989, "bytes_per_op": 196704, "allocs_per_op": 4},
    "AdamStep": {"ns_per_op": 534649, "bytes_per_op": 0, "allocs_per_op": 0},
    "TrainEpoch": {"ns_per_op": 122360909, "bytes_per_op": 677825, "allocs_per_op": 159},
    "PredictBatch": {"ns_per_op": 5139764, "bytes_per_op": 217635, "allocs_per_op": 4},
    "PredictShared": {"ns_per_op": 13668657, "bytes_per_op": 449401, "allocs_per_op": 19},
    "EstimateCardinalityBatch64": {"ns_per_op": 316379, "bytes_per_op": 122880, "allocs_per_op": 122},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 376461, "bytes_per_op": 132354, "allocs_per_op": 842},
    "EstimateCardinalityParallel": {"ns_per_op": 6919, "bytes_per_op": 2165, "allocs_per_op": 14},
    "EstimateCardinalityParallel-4": {"ns_per_op": 9585, "bytes_per_op": 2212, "allocs_per_op": 10},
    "EstimateCardinalityParallelNoCoalesce": {"ns_per_op": 7237, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalityParallelNoCoalesce-4": {"ns_per_op": 9257, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalitySoloCoalesced": {"ns_per_op": 7296, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalitySoloCoalesced-4": {"ns_per_op": 8552, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalityGuarded": {"ns_per_op": 7867, "bytes_per_op": 2166, "allocs_per_op": 14},
    "EstimateCardinalityGuarded-4": {"ns_per_op": 11239, "bytes_per_op": 2205, "allocs_per_op": 11},
    "EstimateCardinalityLargePool/entries=1000/full": {"ns_per_op": 1280319, "bytes_per_op": 333528, "allocs_per_op": 27},
    "EstimateCardinalityLargePool/entries=1000/k=64": {"ns_per_op": 115917, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=10000/full": {"ns_per_op": 12392462, "bytes_per_op": 3316616, "allocs_per_op": 62},
    "EstimateCardinalityLargePool/entries=10000/k=64": {"ns_per_op": 477844, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=50000/full": {"ns_per_op": 64337240, "bytes_per_op": 16360200, "allocs_per_op": 164},
    "EstimateCardinalityLargePool/entries=50000/k=64": {"ns_per_op": 3115117, "bytes_per_op": 31088, "allocs_per_op": 28},
    "AddSaturated/entries=1000": {"ns_per_op": 746.0, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=10000": {"ns_per_op": 903.5, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=50000": {"ns_per_op": 3595, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturatedWithSelection": {"ns_per_op": 40690, "bytes_per_op": 2290, "allocs_per_op": 2},
    "EstimateCardinalityTrainerIdle-4": {"ns_per_op": 10051, "bytes_per_op": 2216, "allocs_per_op": 10},
    "EstimateCardinalityTrainerActive-4": {"ns_per_op": 10187, "bytes_per_op": 2604, "allocs_per_op": 10},
    "WALAppend/none": {"ns_per_op": 2586, "bytes_per_op": 610, "allocs_per_op": 4},
    "WALAppend/interval": {"ns_per_op": 3088, "bytes_per_op": 586, "allocs_per_op": 4},
    "WALAppend/always": {"ns_per_op": 165210, "bytes_per_op": 168, "allocs_per_op": 4},
    "RecoveryReplay": {"ns_per_op": 1836904, "bytes_per_op": 3765309, "allocs_per_op": 20043},
    "RecordFeedbackMemory": {"ns_per_op": 12489, "bytes_per_op": 4842, "allocs_per_op": 19},
    "RecordFeedbackDurable": {"ns_per_op": 12645, "bytes_per_op": 5280, "allocs_per_op": 21},
    "RecordFeedbackDurableAlways": {"ns_per_op": 215105, "bytes_per_op": 4938, "allocs_per_op": 21}
  },
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
