#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-2 baseline) in BENCH_2.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_2.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== nn kernel benchmarks ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x | tee -a "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 5x | tee -a "$RAW"

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "pr": 2,
  "description": "Zero-allocation compute core + cross-request representation cache",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "baseline_commit": "11a7fff",
  "baseline": {
    "_comment": "pre-PR-2 measurements on the same machine (mean of 3 runs; serving benches single run)",
    "MatMul128": {"ns_per_op": 1500848, "bytes_per_op": 32, "allocs_per_op": 1},
    "MatMulBatchForward": {"ns_per_op": 2253470, "bytes_per_op": 32, "allocs_per_op": 1},
    "DenseForwardBackward": {"ns_per_op": 3952488, "bytes_per_op": 459008, "allocs_per_op": 9},
    "SetEncoderForward": {"ns_per_op": 1141056, "bytes_per_op": 360672, "allocs_per_op": 8},
    "AdamStep": {"ns_per_op": 475216, "bytes_per_op": 0, "allocs_per_op": 0},
    "TrainEpoch": {"ns_per_op": 233478005, "bytes_per_op": 60220760, "allocs_per_op": 2486},
    "PredictBatch": {"ns_per_op": 8734545, "bytes_per_op": 2957616, "allocs_per_op": 40},
    "PredictShared": {"ns_per_op": 16551389, "bytes_per_op": 698816, "allocs_per_op": 32},
    "EstimateCardinalityBatch64": {"ns_per_op": 1294353, "bytes_per_op": 1473304, "allocs_per_op": 1310},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 2657548, "bytes_per_op": 3512432, "allocs_per_op": 4653}
  },
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
