#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-6 baseline) in BENCH_6.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries.
#
# The concurrent serving benchmarks run at -cpu 1,4 (the parallel
# single-query throughput point of PR 3), so their names keep the -N
# GOMAXPROCS suffix; every other benchmark records under its bare name. The
# large-pool benchmarks run at 20 iterations (a full-scan iteration at 50k
# entries costs tens of milliseconds).
#
# PR 6 additions:
#   - WALAppend/{none,interval,always}: one journaled feedback record per
#     sync policy. "interval" (the default serving policy) is a buffered
#     copy + CRC — the fsync belongs to the background syncer; "always"
#     prices a group-commit fsync per record and is bounded by the
#     device's sync latency, not this code.
#   - RecoveryReplay: boot-time WAL replay throughput (decode + checksum
#     + callback) over a 10k-record log.
#   - RecordFeedback{Memory,Durable,DurableAlways}: the full feedback
#     ingestion path (drift scoring, validation, dedup, staging) without a
#     data dir, with the WAL at the default "interval" policy, and with
#     fsync-per-record. The PR 6 acceptance gate is Durable within ~10% of
#     Memory: at the default policy the journal adds only framing and a
#     checksum to the hot path. These run at -benchtime 2000x so the
#     buffered-append cost amortizes past cold-start noise.
#
# The frozen baseline below is the PR 5 code measured on this machine
# (BENCH_5.json results). The durability benchmarks did not exist before
# PR 6 — RecordFeedbackMemory IS the reference point for
# RecordFeedbackDurable, so none of them carries a pre-PR baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_6.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== nn kernel benchmarks ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x | tee -a "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== concurrent serving benchmarks (coalescing + solo bypass, -cpu 1,4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel|SoloCoalesced)' -cpu 1,4 -benchmem -benchtime 2s | tee -a "$RAW"
echo "== large-pool benchmarks (signature-indexed top-K vs full scan) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== saturated-pool eviction benchmarks (lazy min-heap vs linear scan) ==" >&2
go test ./internal/pool -run '^$' -bench 'AddSaturated' -benchmem -benchtime 100x | tee -a "$RAW"
echo "== feedback-loop benchmarks (trainer idle vs active, -cpu 4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityTrainer' -cpu 4 -benchmem -benchtime 4s | tee -a "$RAW"
echo "== durability benchmarks (WAL append per policy, recovery replay) ==" >&2
go test ./internal/durable -run '^$' -bench 'WALAppend|RecoveryReplay' -benchmem -benchtime 200x | tee -a "$RAW"
echo "== durable feedback-path benchmarks (WAL overhead on ingestion) ==" >&2
go test . -run '^$' -bench 'RecordFeedback' -benchmem -benchtime 2000x | tee -a "$RAW"

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON. The
# GOMAXPROCS suffix is meaningful for the Parallel/Solo/Trainer benchmarks
# (run at explicit -cpu settings) and stripped everywhere else.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    if (name !~ /Parallel|Solo|Trainer/) sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "pr": 6,
  "description": "Durable deployment state: segmented checksummed feedback WAL, atomic generation checkpoints with retention, point-in-time crash recovery; label-free containment labeling from the cardinality identity",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "baseline_commit": "6509840",
  "baseline": {
    "_comment": "pre-PR-6 measurements on the same machine: BENCH_5.json results. The WAL/recovery/feedback-path benchmarks are new in PR 6; RecordFeedbackMemory is RecordFeedbackDurable's reference.",
    "MatMul128": {"ns_per_op": 669787, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMulBatchForward": {"ns_per_op": 895913, "bytes_per_op": 0, "allocs_per_op": 0},
    "DenseForwardBackward": {"ns_per_op": 1779556, "bytes_per_op": 196704, "allocs_per_op": 4},
    "SetEncoderForward": {"ns_per_op": 744514, "bytes_per_op": 196704, "allocs_per_op": 4},
    "AdamStep": {"ns_per_op": 471987, "bytes_per_op": 0, "allocs_per_op": 0},
    "TrainEpoch": {"ns_per_op": 105327823, "bytes_per_op": 677825, "allocs_per_op": 159},
    "PredictBatch": {"ns_per_op": 4672811, "bytes_per_op": 217635, "allocs_per_op": 4},
    "PredictShared": {"ns_per_op": 12556516, "bytes_per_op": 449401, "allocs_per_op": 19},
    "EstimateCardinalityBatch64": {"ns_per_op": 282028, "bytes_per_op": 122880, "allocs_per_op": 122},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 359164, "bytes_per_op": 132354, "allocs_per_op": 842},
    "EstimateCardinalityParallel": {"ns_per_op": 6371, "bytes_per_op": 2165, "allocs_per_op": 14},
    "EstimateCardinalityParallel-4": {"ns_per_op": 8143, "bytes_per_op": 2206, "allocs_per_op": 11},
    "EstimateCardinalityParallelNoCoalesce": {"ns_per_op": 6033, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalityParallelNoCoalesce-4": {"ns_per_op": 9595, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalitySoloCoalesced": {"ns_per_op": 7710, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalitySoloCoalesced-4": {"ns_per_op": 9659, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalityLargePool/entries=1000/full": {"ns_per_op": 1148442, "bytes_per_op": 333528, "allocs_per_op": 27},
    "EstimateCardinalityLargePool/entries=1000/k=64": {"ns_per_op": 116512, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=10000/full": {"ns_per_op": 18563897, "bytes_per_op": 3316616, "allocs_per_op": 62},
    "EstimateCardinalityLargePool/entries=10000/k=64": {"ns_per_op": 413248, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=50000/full": {"ns_per_op": 58705519, "bytes_per_op": 16360200, "allocs_per_op": 164},
    "EstimateCardinalityLargePool/entries=50000/k=64": {"ns_per_op": 2396611, "bytes_per_op": 31090, "allocs_per_op": 28},
    "AddSaturated/entries=1000": {"ns_per_op": 481.3, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=10000": {"ns_per_op": 984.9, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=50000": {"ns_per_op": 1780, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturatedWithSelection": {"ns_per_op": 41319, "bytes_per_op": 2290, "allocs_per_op": 2},
    "EstimateCardinalityTrainerIdle-4": {"ns_per_op": 10445, "bytes_per_op": 2216, "allocs_per_op": 10},
    "EstimateCardinalityTrainerActive-4": {"ns_per_op": 10521, "bytes_per_op": 2622, "allocs_per_op": 10}
  },
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
