#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-5 baseline) in BENCH_5.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries.
#
# The concurrent serving benchmarks run at -cpu 1,4 (the parallel
# single-query throughput point of PR 3), so their names keep the -N
# GOMAXPROCS suffix; every other benchmark records under its bare name. The
# large-pool benchmarks run at 20 iterations (a full-scan iteration at 50k
# entries costs tens of milliseconds).
#
# PR 5 additions:
#   - AddSaturated / AddSaturatedWithSelection: Add on a capacity-bounded
#     pool at its bound (every insert evicts). The frozen baseline is the
#     pre-PR linear victim scan; the lazy min-heap makes eviction
#     O(log pool) amortized.
#   - EstimateCardinalityTrainer{Idle,Active}: single-query estimate
#     throughput (-cpu 4, coalescing on) with the online-adaptation loop
#     quiescent vs. actively retraining/hot-swapping one cycle per second.
#     The acceptance gate of PR 5 is Active within ~10% of Idle: the hot
#     path never blocks on retraining, so the remaining gap is background
#     CPU contention (labeling runs on one worker) plus scheduler noise —
#     these run at -benchtime 4s so several whole retrain cycles land
#     inside every measurement window.
#
# The frozen baseline below is the PR 4 code measured on this machine
# (BENCH_4.json results). AddSaturated's baseline is the pre-heap linear
# scan measured with the PR 5 harness before the heap landed; the trainer
# benchmarks did not exist before PR 5 — TrainerIdle IS the reference point
# for TrainerActive, so neither carries a pre-PR baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_5.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== nn kernel benchmarks ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x | tee -a "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== concurrent serving benchmarks (coalescing + solo bypass, -cpu 1,4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel|SoloCoalesced)' -cpu 1,4 -benchmem -benchtime 2s | tee -a "$RAW"
echo "== large-pool benchmarks (signature-indexed top-K vs full scan) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== saturated-pool eviction benchmarks (lazy min-heap vs linear scan) ==" >&2
go test ./internal/pool -run '^$' -bench 'AddSaturated' -benchmem -benchtime 100x | tee -a "$RAW"
echo "== feedback-loop benchmarks (trainer idle vs active, -cpu 4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityTrainer' -cpu 4 -benchmem -benchtime 4s | tee -a "$RAW"

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON. The
# GOMAXPROCS suffix is meaningful for the Parallel/Solo/Trainer benchmarks
# (run at explicit -cpu settings) and stripped everywhere else.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    if (name !~ /Parallel|Solo|Trainer/) sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "pr": 5,
  "description": "Online adaptation subsystem: feedback ingestion, background incremental retraining, pre-warmed model hot-swap, drift monitoring; O(log n) heap eviction; surgical rep-cache invalidation",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "baseline_commit": "ce6513a",
  "baseline": {
    "_comment": "pre-PR-5 measurements on the same machine: BENCH_4.json results, plus AddSaturated under the pre-heap linear victim scan (measured with the PR 5 harness before the heap landed). TrainerIdle/TrainerActive are new in PR 5; Idle is Active's reference.",
    "MatMul128": {"ns_per_op": 736421, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMulBatchForward": {"ns_per_op": 844945, "bytes_per_op": 0, "allocs_per_op": 0},
    "DenseForwardBackward": {"ns_per_op": 1780927, "bytes_per_op": 196704, "allocs_per_op": 4},
    "SetEncoderForward": {"ns_per_op": 598523, "bytes_per_op": 196704, "allocs_per_op": 4},
    "AdamStep": {"ns_per_op": 450918, "bytes_per_op": 0, "allocs_per_op": 0},
    "TrainEpoch": {"ns_per_op": 99147502, "bytes_per_op": 677825, "allocs_per_op": 159},
    "PredictBatch": {"ns_per_op": 4515528, "bytes_per_op": 217635, "allocs_per_op": 4},
    "PredictShared": {"ns_per_op": 14456168, "bytes_per_op": 449401, "allocs_per_op": 19},
    "EstimateCardinalityBatch64": {"ns_per_op": 279258, "bytes_per_op": 122880, "allocs_per_op": 122},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 351731, "bytes_per_op": 132354, "allocs_per_op": 842},
    "EstimateCardinalityParallel": {"ns_per_op": 6219, "bytes_per_op": 2165, "allocs_per_op": 14},
    "EstimateCardinalityParallel-4": {"ns_per_op": 8235, "bytes_per_op": 2208, "allocs_per_op": 11},
    "EstimateCardinalityParallelNoCoalesce": {"ns_per_op": 6599, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalityParallelNoCoalesce-4": {"ns_per_op": 11091, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalitySoloCoalesced": {"ns_per_op": 6694, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalitySoloCoalesced-4": {"ns_per_op": 8016, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalityLargePool/entries=1000/full": {"ns_per_op": 900231, "bytes_per_op": 333528, "allocs_per_op": 27},
    "EstimateCardinalityLargePool/entries=1000/k=64": {"ns_per_op": 93887, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=10000/full": {"ns_per_op": 10286958, "bytes_per_op": 3316616, "allocs_per_op": 62},
    "EstimateCardinalityLargePool/entries=10000/k=64": {"ns_per_op": 357283, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=50000/full": {"ns_per_op": 56308219, "bytes_per_op": 16360200, "allocs_per_op": 164},
    "EstimateCardinalityLargePool/entries=50000/k=64": {"ns_per_op": 1871935, "bytes_per_op": 31088, "allocs_per_op": 28},
    "AddSaturated/entries=1000": {"ns_per_op": 8029, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=10000": {"ns_per_op": 74664, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=50000": {"ns_per_op": 962895, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturatedWithSelection": {"ns_per_op": 212695, "bytes_per_op": 2290, "allocs_per_op": 2}
  },
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
