#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-7 baseline) in BENCH_7.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries.
#
# The concurrent serving benchmarks run at -cpu 1,4 (the parallel
# single-query throughput point of PR 3), so their names keep the -N
# GOMAXPROCS suffix; every other benchmark records under its bare name. The
# large-pool benchmarks run at 20 iterations (a full-scan iteration at 50k
# entries costs tens of milliseconds).
#
# PR 7 addition:
#   - EstimateCardinalityGuarded: the parallel serving benchmark with the
#     full operational-guard stack armed (admission gate, per-request
#     deadline, circuit breaker) on healthy traffic. Its delta against
#     EstimateCardinalityParallel is the guard overhead on the happy path;
#     this script FAILS if the -4 point exceeds the unguarded -4 point by
#     more than 5% (the PR 7 acceptance gate).
#
# The frozen baseline below is the PR 6 code measured on this machine
# (BENCH_6.json results). The guarded benchmark did not exist before PR 7 —
# EstimateCardinalityParallel IS its reference point.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_7.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== nn kernel benchmarks ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x | tee -a "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== concurrent serving benchmarks (coalescing + solo bypass + guards, -cpu 1,4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel|SoloCoalesced|Guarded)' -cpu 1,4 -benchmem -benchtime 2s | tee -a "$RAW"
echo "== large-pool benchmarks (signature-indexed top-K vs full scan) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== saturated-pool eviction benchmarks (lazy min-heap vs linear scan) ==" >&2
go test ./internal/pool -run '^$' -bench 'AddSaturated' -benchmem -benchtime 100x | tee -a "$RAW"
echo "== feedback-loop benchmarks (trainer idle vs active, -cpu 4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityTrainer' -cpu 4 -benchmem -benchtime 4s | tee -a "$RAW"
echo "== durability benchmarks (WAL append per policy, recovery replay) ==" >&2
go test ./internal/durable -run '^$' -bench 'WALAppend|RecoveryReplay' -benchmem -benchtime 200x | tee -a "$RAW"
echo "== durable feedback-path benchmarks (WAL overhead on ingestion) ==" >&2
go test . -run '^$' -bench 'RecordFeedback' -benchmem -benchtime 2000x | tee -a "$RAW"

# The PR 7 acceptance gate: guard overhead on the parallel serving point.
# A dedicated -count 3 run comparing MINIMA — single-iteration deltas on a
# shared machine swing +-20% from scheduler noise; the minimum of three is
# the least-perturbed measurement of each side.
echo "== guard-overhead gate (guarded vs unguarded, min of 3) ==" >&2
GATE_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$GATE_RAW"' EXIT
go test . -run '^$' -bench 'EstimateCardinality(Parallel$|Guarded)' -cpu 4 -benchtime 2s -count 3 | tee "$GATE_RAW" >&2
awk '
  $1 == "BenchmarkEstimateCardinalityParallel-4" { if (!u || $3 + 0 < u) u = $3 + 0 }
  $1 == "BenchmarkEstimateCardinalityGuarded-4"  { if (!g || $3 + 0 < g) g = $3 + 0 }
  END {
    if (!u || !g) {
      print "guard-overhead gate: missing benchmark results" > "/dev/stderr"; exit 1
    }
    pct = (g / u - 1) * 100
    printf "guard overhead at -cpu 4: %.1f%% (guarded min %d ns/op vs unguarded min %d ns/op)\n", pct, g, u > "/dev/stderr"
    if (g > u * 1.05) {
      print "guard-overhead gate FAILED: > 5%" > "/dev/stderr"; exit 1
    }
  }
' "$GATE_RAW"

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON. The
# GOMAXPROCS suffix is meaningful for the Parallel/Solo/Trainer/Guarded
# benchmarks (run at explicit -cpu settings) and stripped everywhere else.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    if (name !~ /Parallel|Solo|Trainer|Guarded/) sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "pr": 7,
  "description": "Operational hardening: admission control with load shedding, circuit-breaker fallback routing, degraded-mode durability with automatic re-upgrade, build-tag-free fault-injection registry",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "baseline_commit": "6e8b2c5",
  "baseline": {
    "_comment": "pre-PR-7 measurements on the same machine: BENCH_6.json results. EstimateCardinalityGuarded is new in PR 7; EstimateCardinalityParallel is its reference (gate: guarded within 5% of unguarded at -cpu 4).",
    "MatMul128": {"ns_per_op": 636914, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMulBatchForward": {"ns_per_op": 889223, "bytes_per_op": 0, "allocs_per_op": 0},
    "DenseForwardBackward": {"ns_per_op": 1833472, "bytes_per_op": 196704, "allocs_per_op": 4},
    "SetEncoderForward": {"ns_per_op": 614574, "bytes_per_op": 196704, "allocs_per_op": 4},
    "AdamStep": {"ns_per_op": 434833, "bytes_per_op": 0, "allocs_per_op": 0},
    "TrainEpoch": {"ns_per_op": 111865761, "bytes_per_op": 677825, "allocs_per_op": 159},
    "PredictBatch": {"ns_per_op": 4785421, "bytes_per_op": 217635, "allocs_per_op": 4},
    "PredictShared": {"ns_per_op": 13162969, "bytes_per_op": 449401, "allocs_per_op": 19},
    "EstimateCardinalityBatch64": {"ns_per_op": 334981, "bytes_per_op": 122880, "allocs_per_op": 122},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 365167, "bytes_per_op": 132354, "allocs_per_op": 842},
    "EstimateCardinalityParallel": {"ns_per_op": 7046, "bytes_per_op": 2165, "allocs_per_op": 14},
    "EstimateCardinalityParallel-4": {"ns_per_op": 10020, "bytes_per_op": 2215, "allocs_per_op": 10},
    "EstimateCardinalityParallelNoCoalesce": {"ns_per_op": 6488, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalityParallelNoCoalesce-4": {"ns_per_op": 10169, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalitySoloCoalesced": {"ns_per_op": 7788, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalitySoloCoalesced-4": {"ns_per_op": 10770, "bytes_per_op": 2164, "allocs_per_op": 14},
    "EstimateCardinalityLargePool/entries=1000/full": {"ns_per_op": 1764626, "bytes_per_op": 333528, "allocs_per_op": 27},
    "EstimateCardinalityLargePool/entries=1000/k=64": {"ns_per_op": 161241, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=10000/full": {"ns_per_op": 15061763, "bytes_per_op": 3316616, "allocs_per_op": 62},
    "EstimateCardinalityLargePool/entries=10000/k=64": {"ns_per_op": 536676, "bytes_per_op": 31088, "allocs_per_op": 28},
    "EstimateCardinalityLargePool/entries=50000/full": {"ns_per_op": 74221404, "bytes_per_op": 16360200, "allocs_per_op": 164},
    "EstimateCardinalityLargePool/entries=50000/k=64": {"ns_per_op": 3109080, "bytes_per_op": 31088, "allocs_per_op": 28},
    "AddSaturated/entries=1000": {"ns_per_op": 450.3, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=10000": {"ns_per_op": 881.2, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturated/entries=50000": {"ns_per_op": 2943, "bytes_per_op": 32, "allocs_per_op": 1},
    "AddSaturatedWithSelection": {"ns_per_op": 52643, "bytes_per_op": 2290, "allocs_per_op": 2},
    "EstimateCardinalityTrainerIdle-4": {"ns_per_op": 10731, "bytes_per_op": 2219, "allocs_per_op": 10},
    "EstimateCardinalityTrainerActive-4": {"ns_per_op": 13856, "bytes_per_op": 2649, "allocs_per_op": 9},
    "WALAppend/none": {"ns_per_op": 3905, "bytes_per_op": 584, "allocs_per_op": 4},
    "WALAppend/interval": {"ns_per_op": 3335, "bytes_per_op": 586, "allocs_per_op": 4},
    "WALAppend/always": {"ns_per_op": 195712, "bytes_per_op": 168, "allocs_per_op": 4},
    "RecoveryReplay": {"ns_per_op": 2733460, "bytes_per_op": 3765279, "allocs_per_op": 20043},
    "RecordFeedbackMemory": {"ns_per_op": 15439, "bytes_per_op": 5016, "allocs_per_op": 19},
    "RecordFeedbackDurable": {"ns_per_op": 14953, "bytes_per_op": 5497, "allocs_per_op": 21},
    "RecordFeedbackDurableAlways": {"ns_per_op": 231422, "bytes_per_op": 5112, "allocs_per_op": 21}
  },
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
