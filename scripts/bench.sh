#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-3 baseline) in BENCH_3.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries.
#
# The concurrent serving benchmarks run at -cpu 1,4 (the acceptance point of
# PR 3 is the 4-vCPU parallel single-query throughput), so their names keep
# the -N GOMAXPROCS suffix; every other benchmark records under its bare
# name. The frozen baseline below is the PR 2 code measured on this machine:
# compute-core numbers from BENCH_2.json, parallel serving measured by
# running BenchmarkEstimateCardinalityParallel against the PR 2 estimator
# (no coalescing, no pool-resident precompute, single-mutex cache) before
# the PR 3 changes landed.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_3.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== nn kernel benchmarks ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x | tee -a "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 5x | tee -a "$RAW"
echo "== concurrent serving benchmarks (coalescing + precompute, -cpu 1,4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityParallel' -cpu 1,4 -benchmem -benchtime 2s | tee -a "$RAW"

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON. The
# GOMAXPROCS suffix is meaningful for the Parallel benchmarks (run at
# -cpu 1,4) and stripped everywhere else.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    if (name !~ /Parallel/) sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "pr": 3,
  "description": "High-concurrency serving: request coalescing, pool-resident head precompute, sharded representation cache",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "baseline_commit": "92c2820",
  "baseline": {
    "_comment": "pre-PR-3 measurements on the same machine: compute core from BENCH_2.json results; EstimateCardinalityParallel[-4] measured at the PR 2 commit with the PR 2 estimator (2s runs at -cpu 1,4)",
    "MatMul128": {"ns_per_op": 697993, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMulBatchForward": {"ns_per_op": 974668, "bytes_per_op": 0, "allocs_per_op": 0},
    "DenseForwardBackward": {"ns_per_op": 2019240, "bytes_per_op": 196704, "allocs_per_op": 4},
    "SetEncoderForward": {"ns_per_op": 655251, "bytes_per_op": 196704, "allocs_per_op": 4},
    "AdamStep": {"ns_per_op": 496535, "bytes_per_op": 0, "allocs_per_op": 0},
    "TrainEpoch": {"ns_per_op": 109340086, "bytes_per_op": 677825, "allocs_per_op": 159},
    "PredictBatch": {"ns_per_op": 5074538, "bytes_per_op": 217635, "allocs_per_op": 4},
    "PredictShared": {"ns_per_op": 15558514, "bytes_per_op": 567472, "allocs_per_op": 23},
    "EstimateCardinalityBatch64": {"ns_per_op": 635206, "bytes_per_op": 192460, "allocs_per_op": 2858},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 1067996, "bytes_per_op": 295875, "allocs_per_op": 5859},
    "EstimateCardinalityParallel": {"ns_per_op": 19139, "bytes_per_op": 4622, "allocs_per_op": 91},
    "EstimateCardinalityParallel-4": {"ns_per_op": 19641, "bytes_per_op": 4626, "allocs_per_op": 91}
  },
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
