#!/usr/bin/env bash
# bench.sh — run the repository's performance benchmarks with -benchmem and
# record the results (plus the frozen pre-PR-4 baseline) in BENCH_4.json,
# the perf trajectory file. Usage:
#
#   scripts/bench.sh [output.json]
#
# or `make bench`. Pure `go test` — no extra tooling, no cmd/ binaries.
#
# The concurrent serving benchmarks run at -cpu 1,4 (the parallel
# single-query throughput point of PR 3), so their names keep the -N
# GOMAXPROCS suffix; every other benchmark records under its bare name. The
# large-pool benchmarks (PR 4's acceptance point: per-request latency at
# 1k/10k/50k pool entries per FROM clause, full scan vs signature-indexed
# top-64 candidate selection) run at 20 iterations — each full-scan
# iteration at 50k entries costs tens of milliseconds, so 20x is stable
# while keeping the whole section under a couple of seconds of measurement.
#
# The frozen baseline below is the PR 3 code measured on this machine
# (BENCH_3.json results). The large-pool benchmark did not exist before
# PR 4; its baseline is the unbounded scan, which IS the pre-PR candidate
# path (MaxCandidates = 0 is bit-identical to it), recorded from this
# machine's first PR 4 run under ".../full".
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_4.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== nn kernel benchmarks ==" >&2
go test ./internal/nn -run '^$' -bench 'MatMul|Dense|SetEncoder|Adam' -benchmem -benchtime 50x | tee -a "$RAW"
echo "== compute-core benchmarks (training epoch, batched inference) ==" >&2
go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch|PredictShared' -benchmem -benchtime 10x | tee -a "$RAW"
echo "== serving benchmarks (batched cardinality estimation) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Batch|SingleLoop)64' -benchmem -benchtime 20x | tee -a "$RAW"
echo "== concurrent serving benchmarks (coalescing + solo bypass, -cpu 1,4) ==" >&2
go test . -run '^$' -bench 'EstimateCardinality(Parallel|SoloCoalesced)' -cpu 1,4 -benchmem -benchtime 2s | tee -a "$RAW"
echo "== large-pool benchmarks (signature-indexed top-K vs full scan) ==" >&2
go test . -run '^$' -bench 'EstimateCardinalityLargePool' -benchmem -benchtime 20x | tee -a "$RAW"

# Render "BenchmarkFoo[-P]  N  ns/op  B/op  allocs/op" lines as JSON. The
# GOMAXPROCS suffix is meaningful for the Parallel/Solo benchmarks (run at
# -cpu 1,4) and stripped everywhere else.
RESULTS="$(awk '
  /^Benchmark/ {
    name = $1
    if (name !~ /Parallel|Solo/) sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op")     ns = $i
      if ($(i+1) == "B/op")      bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                      name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
  }
  END { print out }
' "$RAW")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
GOVERSION="$(go env GOVERSION)"
CPU="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "pr": 4,
  "description": "Sublinear pool candidate selection: signature-indexed top-K matching, pool capacity/LRU eviction, coalescer solo bypass",
  "date": "$DATE",
  "go": "$GOVERSION",
  "cpu": "$CPU",
  "baseline_commit": "ea09fa6",
  "baseline": {
    "_comment": "pre-PR-4 measurements on the same machine: BENCH_3.json results. EstimateCardinalityLargePool/*/full is the pre-PR candidate path (unbounded scan, bit-identical to MaxCandidates=0) measured with the PR 4 harness; compare it against .../k=64 for the candidate-bound speedup.",
    "MatMul128": {"ns_per_op": 681101, "bytes_per_op": 0, "allocs_per_op": 0},
    "MatMulBatchForward": {"ns_per_op": 942114, "bytes_per_op": 0, "allocs_per_op": 0},
    "DenseForwardBackward": {"ns_per_op": 1981559, "bytes_per_op": 196704, "allocs_per_op": 4},
    "SetEncoderForward": {"ns_per_op": 758854, "bytes_per_op": 196704, "allocs_per_op": 4},
    "AdamStep": {"ns_per_op": 508671, "bytes_per_op": 0, "allocs_per_op": 0},
    "TrainEpoch": {"ns_per_op": 108145854, "bytes_per_op": 677825, "allocs_per_op": 159},
    "PredictBatch": {"ns_per_op": 5181015, "bytes_per_op": 217635, "allocs_per_op": 4},
    "PredictShared": {"ns_per_op": 13976033, "bytes_per_op": 449401, "allocs_per_op": 19},
    "EstimateCardinalityBatch64": {"ns_per_op": 286074, "bytes_per_op": 122753, "allocs_per_op": 122},
    "EstimateCardinalitySingleLoop64": {"ns_per_op": 363342, "bytes_per_op": 132352, "allocs_per_op": 842},
    "EstimateCardinalityParallel": {"ns_per_op": 8347, "bytes_per_op": 3601, "allocs_per_op": 6},
    "EstimateCardinalityParallel-4": {"ns_per_op": 9576, "bytes_per_op": 2373, "allocs_per_op": 3},
    "EstimateCardinalityParallelNoCoalesce": {"ns_per_op": 6937, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalityParallelNoCoalesce-4": {"ns_per_op": 11644, "bytes_per_op": 2068, "allocs_per_op": 13},
    "EstimateCardinalityLargePool/entries=1000/full": {"ns_per_op": 961841, "bytes_per_op": 333528, "allocs_per_op": 27},
    "EstimateCardinalityLargePool/entries=10000/full": {"ns_per_op": 10846890, "bytes_per_op": 3316616, "allocs_per_op": 62},
    "EstimateCardinalityLargePool/entries=50000/full": {"ns_per_op": 56676100, "bytes_per_op": 16360200, "allocs_per_op": 164}
  },
  "results": {
$RESULTS
  }
}
EOF

echo "wrote $OUT" >&2
