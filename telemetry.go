package crn

import "crn/internal/telemetry"

// This file is the facade surface of the production telemetry layer (see
// internal/telemetry): a dependency-free lock-free metrics registry with
// Prometheus text exposition, per-request stage timing, and a live
// accuracy tracker. A bundle is created once per serving process, passed
// to the estimator via WithTelemetry, and exposed over HTTP by writing
// Registry().WriteText to a /metrics handler.

// Telemetry is the serving telemetry bundle: the metrics registry plus
// every hot-path instrument resolved at construction. A nil *Telemetry
// disables everything at the cost of a nil check.
type Telemetry = telemetry.Telemetry

// MetricsContentType is the Content-Type a /metrics handler should set
// when serving Telemetry.Registry().WriteText output (Prometheus text
// exposition format 0.0.4).
const MetricsContentType = telemetry.ExpositionContentType

// NewTelemetry creates a telemetry bundle over a fresh registry. Pass it
// to CardinalityEstimator / AdaptiveEstimator via WithTelemetry and serve
// its registry on /metrics; one bundle per estimator (family names are
// unique per registry).
func NewTelemetry() *Telemetry { return telemetry.New() }
