package crn

import (
	"context"
	"strings"
	"testing"

	"crn/internal/telemetry"
)

// TestStageSpansSumToE2E pins the stage-decomposition invariant: on a
// serial workload the six stage spans are recorded by nested timers that
// partition the estimate's wall time, so their summed durations
// reconstruct the end-to-end histogram's sum. Stage spans are sampled
// (1-in-SampleRate passes, observed at inverse-probability weight), so the
// reconstruction is statistical: the workload warms up first — a sampled
// cold-start outlier would carry its weight into the sum — and then runs
// enough measured requests for the weighted estimate to settle. The
// tolerance is asymmetric: untimed glue (option plumbing, slice
// allocation) can only make the stage sum FALL SHORT of e2e, while
// sampling noise and ApproxSum's geometric-midpoint error (≤12% per
// histogram) cut both ways.
func TestStageSpansSumToE2E(t *testing.T) {
	ctx := context.Background()
	sys, model, pool := adaptFixture(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry()
	est := sys.CardinalityEstimator(model, pool, WithFallback(base), WithTelemetry(tel))

	warm := labeledWorkload(t, sys, 21, 2*telemetry.SampleRate)
	for _, lq := range warm {
		if _, err := est.EstimateCardinality(ctx, lq.Q); err != nil {
			t.Fatal(err)
		}
	}
	s := tel.Stages
	stages := []*telemetry.Histogram{
		s.Admission, s.CoalesceWait, s.CacheLookup,
		s.CandidateSelection, s.NNForward, s.Finalize,
	}
	e2eBefore := tel.E2E.Snapshot()
	stagesBefore := make([]telemetry.HistSnapshot, len(stages))
	for i, h := range stages {
		stagesBefore[i] = h.Snapshot()
	}

	probes := labeledWorkload(t, sys, 22, 240)
	for _, lq := range probes {
		if _, err := est.EstimateCardinality(ctx, lq.Q); err != nil {
			t.Fatal(err)
		}
	}

	e2e := tel.E2E.Snapshot().Sub(e2eBefore)
	if got := e2e.Total(); got != uint64(len(probes)) {
		t.Fatalf("e2e count = %d, want %d", got, len(probes))
	}
	var stageSum float64
	for i, h := range stages {
		stageSum += h.Snapshot().Sub(stagesBefore[i]).ApproxSum()
	}
	if ratio := stageSum / e2e.ApproxSum(); ratio < 0.4 || ratio > 1.6 {
		t.Errorf("stage sum / e2e = %.3f (stages %.6fs, e2e %.6fs), want within [0.4, 1.6]",
			ratio, stageSum, e2e.ApproxSum())
	}
}

// TestAccuracyJoinsFeedback drives the live-accuracy loop end to end on an
// adaptive estimator: estimates ring their values by query key, feedback
// truths join against the ring, and the per-arm q-error family fills in —
// the same histograms /metrics exposes. The exposition itself must also
// cover the online-adaptation and durability families and pass the lint.
func TestAccuracyJoinsFeedback(t *testing.T) {
	ctx := context.Background()
	sys, model, pool := adaptFixture(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry()
	ae := sys.AdaptiveEstimator(model, pool,
		WithFallback(base),
		WithTelemetry(tel),
		WithDataDir(t.TempDir()),
		WithRetrainInterval(-1),
	)
	defer ae.Close()

	probes := labeledWorkload(t, sys, 23, 20)
	for _, lq := range probes {
		if _, err := ae.EstimateCardinality(ctx, lq.Q); err != nil {
			t.Fatal(err)
		}
	}
	if tel.Accuracy.Joined() != 0 {
		t.Fatalf("joins before any feedback: %d", tel.Accuracy.Joined())
	}
	for _, lq := range probes {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
	}

	if joined := tel.Accuracy.Joined(); joined == 0 {
		t.Fatal("no feedback truth joined a ringed estimate")
	}
	crnN := tel.Accuracy.Hist(telemetry.ArmCRN).Snapshot().Total()
	fbN := tel.Accuracy.Hist(telemetry.ArmFallback).Snapshot().Total()
	if crnN+fbN == 0 {
		t.Fatal("q-error histograms empty after joins")
	}
	if crnN > 0 {
		snap := tel.Accuracy.Hist(telemetry.ArmCRN).Snapshot()
		if q := snap.Quantile(0.50); q < 1 {
			t.Errorf("crn-arm q-error p50 = %.3f, want >= 1 (q-error is clamped)", q)
		}
	}

	var b strings.Builder
	if err := tel.Registry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if problems := telemetry.Lint(strings.NewReader(text)); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	for _, fam := range []string{
		"crn_accuracy_qerror", "crn_accuracy_joined_total",
		"crn_model_generation", "crn_feedback_total", "crn_drift_score",
		"crn_wal_records_total", "crn_checkpoints_total", "crn_durability_degraded",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	fams, err := telemetry.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fams["crn_feedback_total"].Sample("result", "accepted"); !ok || v == 0 {
		t.Errorf("crn_feedback_total{result=accepted} = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := fams["crn_wal_records_total"].Sample("kind", "append"); !ok || v == 0 {
		t.Errorf("crn_wal_records_total{kind=append} = %v (ok=%v), want > 0", v, ok)
	}
}
