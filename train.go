package crn

import (
	"context"
	"fmt"
	"math/rand"

	"crn/internal/contain"
	icrn "crn/internal/crn"
	"crn/internal/workload"
)

// TrainConfig controls containment-model training. The zero value uses the
// defaults (5000 pairs, seed 1, DefaultModelConfig).
//
// Deprecated: configure TrainContainmentModel with TrainOption values; this
// struct remains as the carrier for WithTrainConfig.
type TrainConfig struct {
	Pairs    int         // training pairs to generate (0 = 5000)
	Seed     int64       // generator seed (0 = 1)
	Model    ModelConfig // zero value = crn defaults
	Progress func(epoch int, valQError float64)
}

// ContainmentModel is a trained CRN bound to its feature encoder.
type ContainmentModel struct {
	rates *icrn.Rates
	model *icrn.Model
}

// TrainContainmentModel generates a labeled pair workload over the system's
// database (0-2 joins, §3.1.2), trains a CRN on it and returns the model.
// The context covers the whole pipeline: workload labeling checks it per
// executed query and training checks it per epoch, so cancelling aborts
// promptly with the context's error.
func (s *System) TrainContainmentModel(ctx context.Context, opts ...TrainOption) (*ContainmentModel, error) {
	var cfg TrainConfig
	for _, o := range opts {
		o(&cfg)
	}
	return s.trainWithConfig(ctx, cfg)
}

// TrainContainmentModelConfig is the config-struct form of
// TrainContainmentModel.
//
// Deprecated: use TrainContainmentModel with options.
func (s *System) TrainContainmentModelConfig(cfg TrainConfig) (*ContainmentModel, error) {
	return s.trainWithConfig(context.Background(), cfg)
}

func (s *System) trainWithConfig(ctx context.Context, cfg TrainConfig) (*ContainmentModel, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := cfg.Pairs
	if n <= 0 {
		n = 5000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	mcfg := cfg.Model
	if mcfg.Hidden == 0 {
		mcfg = icrn.DefaultConfig()
	}
	gen := workload.NewGenerator(s.schema, s.db, seed)
	pairs, err := gen.TrainingPairs(n)
	if err != nil {
		return nil, err
	}
	labeled, err := workload.LabelPairs(ctxOracle{ctx: ctx, ex: s.exec}, pairs, 0)
	if err != nil {
		return nil, err
	}
	rand.New(rand.NewSource(seed+1)).Shuffle(len(labeled), func(i, j int) {
		labeled[i], labeled[j] = labeled[j], labeled[i]
	})
	train, val := workload.SplitPairs(labeled, 0.8)
	encode := func(in []workload.LabeledPair) ([]icrn.Sample, error) {
		out := make([]icrn.Sample, len(in))
		for i, lp := range in {
			v1, err := s.enc.EncodeQuery(lp.Q1)
			if err != nil {
				return nil, err
			}
			v2, err := s.enc.EncodeQuery(lp.Q2)
			if err != nil {
				return nil, err
			}
			out[i] = icrn.Sample{V1: v1, V2: v2, Rate: lp.Rate}
		}
		return out, nil
	}
	trainS, err := encode(train)
	if err != nil {
		return nil, err
	}
	valS, err := encode(val)
	if err != nil {
		return nil, err
	}
	m := icrn.NewModel(mcfg, s.enc.Dim())
	if _, err := m.TrainCtx(ctx, trainS, valS, func(st icrn.EpochStats) {
		if cfg.Progress != nil {
			cfg.Progress(st.Epoch, st.ValQError)
		}
	}); err != nil {
		return nil, err
	}
	return &ContainmentModel{rates: icrn.NewRates(m, s.enc), model: m}, nil
}

// EstimateContainment estimates q1 ⊂% q2 in [0,1].
func (m *ContainmentModel) EstimateContainment(ctx context.Context, q1, q2 Query) (float64, error) {
	out, err := m.EstimateContainmentBatch(ctx, [][2]Query{{q1, q2}})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EstimateContainmentBatch estimates q1 ⊂% q2 for every pair with one
// amortized forward pass: queries recurring across the batch are pushed
// through the set modules once, and the pair head runs matrix-batched.
// Results are identical to per-pair EstimateContainment calls.
func (m *ContainmentModel) EstimateContainmentBatch(ctx context.Context, pairs [][2]Query) ([]float64, error) {
	for _, p := range pairs {
		if err := contain.Validate(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return m.rates.EstimateRatesCtx(ctx, pairs)
}

// Save serializes the trained model weights.
func (m *ContainmentModel) Save() ([]byte, error) { return m.model.Save() }

// LoadContainmentModel restores a model saved with Save, re-binding it to
// this system's feature encoder. A model trained against a different
// featurization fails with an error wrapping ErrDimMismatch.
func (s *System) LoadContainmentModel(data []byte) (*ContainmentModel, error) {
	m, err := icrn.Load(data)
	if err != nil {
		return nil, err
	}
	if m.Dim() != s.enc.Dim() {
		return nil, fmt.Errorf("%w: model expects dimension %d, this database's featurization has %d",
			ErrDimMismatch, m.Dim(), s.enc.Dim())
	}
	return &ContainmentModel{rates: icrn.NewRates(m, s.enc), model: m}, nil
}
